package vae

import (
	"math"
	"testing"
	"testing/quick"

	"deepthermo/internal/lattice"
	"deepthermo/internal/nn"
	"deepthermo/internal/rng"
	"deepthermo/internal/tensor"
)

func testConfig() Config {
	return Config{Sites: 8, Species: 3, Latent: 4, Hidden: 16, BetaKL: 1}
}

func testBatch(m *Model, b int, src *rng.Source) (*tensor.Matrix, []float64, []lattice.Config) {
	n, k := m.Config().Sites, m.Config().Species
	x := tensor.NewMatrix(b, n*k)
	conds := make([]float64, b)
	targets := make([]lattice.Config, b)
	for i := 0; i < b; i++ {
		cfg := make(lattice.Config, n)
		for s := range cfg {
			cfg[s] = lattice.Species(src.Intn(k))
		}
		targets[i] = cfg
		m.OneHot(cfg, x.Row(i))
		conds[i] = src.Float64()
	}
	return x, conds, targets
}

func TestNewValidation(t *testing.T) {
	src := rng.New(1)
	bad := []Config{
		{Sites: 0, Species: 2, Latent: 2, Hidden: 4},
		{Sites: 4, Species: 1, Latent: 2, Hidden: 4},
		{Sites: 4, Species: 2, Latent: 0, Hidden: 4},
		{Sites: 4, Species: 2, Latent: 2, Hidden: 0},
	}
	for _, c := range bad {
		if _, err := New(c, src); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	m, err := New(testConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() == 0 {
		t.Error("no parameters")
	}
}

func TestOneHot(t *testing.T) {
	src := rng.New(2)
	m, _ := New(testConfig(), src)
	cfg := lattice.Config{0, 1, 2, 0, 1, 2, 0, 1}
	oh := m.OneHot(cfg, nil)
	if len(oh) != 8*3 {
		t.Fatalf("one-hot length %d", len(oh))
	}
	for site, sp := range cfg {
		for k := 0; k < 3; k++ {
			want := 0.0
			if int(sp) == k {
				want = 1
			}
			if oh[site*3+k] != want {
				t.Fatalf("one-hot wrong at site %d", site)
			}
		}
	}
	// Reuse clears previous contents.
	cfg2 := lattice.Config{2, 2, 2, 2, 2, 2, 2, 2}
	m.OneHot(cfg2, oh)
	if oh[0] != 0 || oh[2] != 1 {
		t.Fatal("one-hot reuse did not clear")
	}
}

func TestDecodeProbsNormalized(t *testing.T) {
	src := rng.New(3)
	m, _ := New(testConfig(), src)
	z := make([]float64, 4)
	for i := range z {
		z[i] = src.NormFloat64()
	}
	probs := m.DecodeProbs(z, 0.5)
	if len(probs) != 8 {
		t.Fatalf("probs for %d sites", len(probs))
	}
	for site, p := range probs {
		var sum float64
		for _, v := range p {
			if v <= 0 {
				t.Fatalf("site %d: non-positive probability %g", site, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("site %d: probabilities sum to %g", site, sum)
		}
	}
}

func TestStepReducesLossOnMemorization(t *testing.T) {
	// A VAE with ample capacity must drive reconstruction loss down on a
	// single repeated batch.
	src := rng.New(4)
	m, _ := New(testConfig(), src)
	x, conds, targets := testBatch(m, 4, src)
	opt := nn.NewAdam(5e-3)
	params := m.Params()
	var first, last Losses
	for it := 0; it < 300; it++ {
		nn.ZeroGrads(params)
		l := m.Step(x, conds, targets, src)
		opt.Step(params)
		if it == 0 {
			first = l
		}
		last = l
	}
	if last.Recon >= first.Recon*0.7 {
		t.Errorf("recon loss did not drop: %g → %g", first.Recon, last.Recon)
	}
	if last.Accuracy <= first.Accuracy {
		t.Errorf("accuracy did not improve: %g → %g", first.Accuracy, last.Accuracy)
	}
	if last.KL < 0 {
		t.Errorf("negative KL %g", last.KL)
	}
}

// TestStepGradients finite-difference-checks the full VAE loss gradient
// (reconstruction + KL through the reparameterization) for a sample of
// parameters. The stochastic ε draw is made reproducible by resetting the
// RNG to the same seed before every evaluation.
func TestStepGradients(t *testing.T) {
	cfg := Config{Sites: 4, Species: 2, Latent: 2, Hidden: 6, BetaKL: 0.7}
	m, _ := New(cfg, rng.New(5))
	x, conds, targets := testBatch(m, 3, rng.New(6))

	lossAt := func() float64 {
		// Fixed RNG → identical ε draws → deterministic loss.
		l := m.Step(x, conds, targets, rng.New(77))
		return l.Recon + cfg.BetaKL*l.KL
	}

	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(x, conds, targets, rng.New(77))
	grads := nn.FlattenGrads(params, nil)

	flat := nn.FlattenValues(params, nil)
	const h = 1e-6
	checked := 0
	for j := 0; j < len(flat); j += 11 {
		orig := flat[j]
		flat[j] = orig + h
		nn.SetValues(params, flat)
		lp := lossAt()
		flat[j] = orig - h
		nn.SetValues(params, flat)
		lm := lossAt()
		flat[j] = orig
		nn.SetValues(params, flat)
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grads[j]) > 2e-3*(1+math.Abs(fd)) {
			t.Errorf("param %d: backprop %g vs fd %g", j, grads[j], fd)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

func TestEncodeShapes(t *testing.T) {
	src := rng.New(7)
	m, _ := New(testConfig(), src)
	cfg := make(lattice.Config, 8)
	mu, logvar := m.Encode(cfg, 0.3)
	if len(mu) != 4 || len(logvar) != 4 {
		t.Fatalf("Encode shapes %d, %d", len(mu), len(logvar))
	}
	for _, lv := range logvar {
		if lv < -logvarClamp-1e-9 || lv > logvarClamp+1e-9 {
			t.Fatalf("logvar %g outside clamp", lv)
		}
	}
}

func TestCloneWeightsIdenticalInference(t *testing.T) {
	src := rng.New(8)
	m, _ := New(testConfig(), src)
	clone := m.CloneWeights(rng.New(9))
	z := []float64{0.1, -0.2, 0.3, 0}
	p1 := m.DecodeProbs(z, 0.4)
	p2 := clone.DecodeProbs(z, 0.4)
	for site := range p1 {
		for k := range p1[site] {
			if p1[site][k] != p2[site][k] {
				t.Fatal("clone decodes differently")
			}
		}
	}
	// Mutating the clone must not affect the original.
	clone.Params()[0].Value[0] += 1
	p3 := m.DecodeProbs(z, 0.4)
	if p3[0][0] != p1[0][0] {
		t.Fatal("clone shares weights")
	}
}

func TestSetBetaKL(t *testing.T) {
	m, _ := New(testConfig(), rng.New(10))
	m.SetBetaKL(0.25)
	if m.Config().BetaKL != 0.25 {
		t.Error("SetBetaKL ignored")
	}
}

func TestLossesTotal(t *testing.T) {
	l := Losses{Recon: 2, KL: 3}
	if l.Total(0.5) != 3.5 {
		t.Errorf("Total = %g", l.Total(0.5))
	}
}

func TestSampleConstrainedQuota(t *testing.T) {
	src := rng.New(11)
	n, k := 12, 3
	probs := make([][]float64, n)
	for i := range probs {
		p := make([]float64, k)
		var sum float64
		for j := range p {
			p[j] = src.Float64() + 0.01
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		probs[i] = p
	}
	quota := []int{5, 4, 3}
	err := quick.Check(func(seed uint16) bool {
		s := rng.New(uint64(seed))
		order := s.Perm(n)
		cfg, logProb, err := SampleConstrained(probs, quota, order, s)
		if err != nil {
			return false
		}
		counts := cfg.Counts(k)
		for sp := range quota {
			if counts[sp] != quota[sp] {
				return false
			}
		}
		return logProb <= 0 && !math.IsInf(logProb, -1)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLogProbMatchesSample: the density returned by SampleConstrained must
// equal LogProbConstrained evaluated on the sampled configuration — the
// identity the exact MH correction depends on.
func TestLogProbMatchesSample(t *testing.T) {
	src := rng.New(12)
	n, k := 10, 4
	probs := make([][]float64, n)
	for i := range probs {
		p := make([]float64, k)
		var sum float64
		for j := range p {
			p[j] = src.Float64() + 0.05
			sum += p[j]
		}
		for j := range p {
			p[j] /= sum
		}
		probs[i] = p
	}
	quota := []int{3, 3, 2, 2}
	for trial := 0; trial < 100; trial++ {
		order := src.Perm(n)
		cfg, logSample, err := SampleConstrained(probs, quota, order, src)
		if err != nil {
			t.Fatal(err)
		}
		logEval, err := LogProbConstrained(probs, cfg, quota, order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(logSample-logEval) > 1e-10 {
			t.Fatalf("sample density %g != evaluated density %g", logSample, logEval)
		}
	}
}

func TestLogProbConstrainedQuotaViolation(t *testing.T) {
	probs := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	// cfg uses species 0 twice but quota allows once.
	lp, err := LogProbConstrained(probs, lattice.Config{0, 0}, []int{1, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lp, -1) {
		t.Errorf("quota-violating config has density %g, want -inf", lp)
	}
}

func TestConstrainedValidation(t *testing.T) {
	probs := [][]float64{{1, 0}, {0, 1}}
	src := rng.New(13)
	if _, _, err := SampleConstrained(probs, []int{1, 1}, []int{0}, src); err == nil {
		t.Error("short order accepted")
	}
	if _, _, err := SampleConstrained(probs, []int{3, 1}, []int{0, 1}, src); err == nil {
		t.Error("oversubscribed quota accepted")
	}
	if _, _, err := SampleConstrained(probs, []int{-1, 3}, []int{0, 1}, src); err == nil {
		t.Error("negative quota accepted")
	}
	if _, err := LogProbConstrained(probs, lattice.Config{0}, []int{1, 1}, []int{0, 1}); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestConstrainedSamplingDistribution: with uniform per-site probabilities
// the constrained sampler must produce every fixed-composition arrangement
// with equal probability; check via the exact density (uniform: each
// config has density 1/multinomial).
func TestConstrainedSamplingDistribution(t *testing.T) {
	n := 6
	probs := make([][]float64, n)
	for i := range probs {
		probs[i] = []float64{0.5, 0.5}
	}
	quota := []int{3, 3}
	src := rng.New(14)
	wantLog := -math.Log(20) // C(6,3) = 20 arrangements
	for trial := 0; trial < 50; trial++ {
		order := src.Perm(n)
		_, lp, err := SampleConstrained(probs, quota, order, src)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lp-wantLog) > 1e-10 {
			t.Fatalf("uniform constrained density %g, want %g", lp, wantLog)
		}
	}
}

func TestGaussDensities(t *testing.T) {
	// Standard normal at 0: −½ln(2π) per dim.
	if lp := LogStdNormalPDF([]float64{0, 0}); math.Abs(lp+log2pi) > 1e-12 {
		t.Errorf("std normal at origin: %g", lp)
	}
	// General vs standard consistency.
	x := []float64{0.3, -0.7}
	mu := []float64{0, 0}
	lv := []float64{0, 0}
	if math.Abs(LogNormalPDF(x, mu, lv)-LogStdNormalPDF(x)) > 1e-12 {
		t.Error("LogNormalPDF with unit params != LogStdNormalPDF")
	}
	// Scaling: N(0, e¹) at 0 is −½(ln2π + 1).
	if lp := LogNormalPDF([]float64{0}, []float64{0}, []float64{1}); math.Abs(lp+0.5*(log2pi+1)) > 1e-12 {
		t.Errorf("scaled normal: %g", lp)
	}
}
