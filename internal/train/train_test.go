package train

import (
	"context"
	"errors"
	"math"
	"testing"

	"deepthermo/internal/alloy"
	"deepthermo/internal/lattice"
	"deepthermo/internal/nn"
	"deepthermo/internal/rng"
	"deepthermo/internal/vae"
	"deepthermo/internal/workload"
)

func testSetup(t testing.TB) (*alloy.Model, *workload.Dataset, vae.Config) {
	t.Helper()
	m := alloy.NbMoTaW(lattice.MustNew(lattice.BCC, 2, 2, 2)) // 16 sites
	ds, err := workload.Generate(m, workload.GenOptions{
		Temps:          []float64{500, 2000},
		SamplesPerTemp: 40,
		EquilSweeps:    30,
		GapSweeps:      2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := vae.Config{Sites: 16, Species: 4, Latent: 3, Hidden: 24, BetaKL: 1}
	return m, ds, cfg
}

func TestFitReducesLoss(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	model, err := vae.New(vcfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Fit(model, ds, Options{Epochs: 15, BatchSize: 16, LR: 3e-3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 15 {
		t.Fatalf("%d epochs reported", len(stats))
	}
	if stats[14].Recon >= stats[0].Recon {
		t.Errorf("recon loss %g → %g did not decrease", stats[0].Recon, stats[14].Recon)
	}
	for i, s := range stats {
		if s.Epoch != i {
			t.Fatal("epoch numbering wrong")
		}
		if s.Accuracy < 0 || s.Accuracy > 1 {
			t.Fatalf("accuracy %g out of range", s.Accuracy)
		}
	}
}

// TestFitDivergenceGuardRecovers: an absurd learning rate overflows the
// posterior mean (mu² → +Inf in the KL term) within a step; the guard
// must roll the weights back to the last finite snapshot, halve the rate
// until training stabilises, report the events in the stats, and deliver
// a finite model — not a NaN artifact. The VAE loss itself is clamped
// (logvar clamp, log(max(p,1e-300))), so only float64 overflow triggers
// divergence; 1e158 sits a few octaves above that boundary, well inside
// the guard's halving budget.
func TestFitDivergenceGuardRecovers(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	model, err := vae.New(vcfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Fit(model, ds, Options{Epochs: 3, BatchSize: 16, LR: 1e158, Seed: 3})
	if err != nil {
		t.Fatalf("guarded training failed outright: %v", err)
	}
	if len(stats) != 3 {
		t.Fatalf("%d finite epochs reported, want 3", len(stats))
	}
	if TotalDiverged(stats) == 0 {
		t.Fatal("lr=1e158 training reported no divergence events")
	}
	for _, s := range stats {
		if !isFinite(s.Recon) || !isFinite(s.KL) {
			t.Fatalf("reported epoch stats non-finite: %+v", s)
		}
	}
	flat := nn.FlattenValues(model.Params(), nil)
	for i, w := range flat {
		if !isFinite(w) {
			t.Fatalf("weight %d non-finite after guarded training: %g", i, w)
		}
	}
}

// TestFitDivergenceGuardGivesUp: a guard that can never stabilise (the
// divergence budget exhausted) fails the run with an error instead of
// looping forever.
func TestFitDivergenceGuardGivesUp(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	model, err := vae.New(vcfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Poison a weight directly: every forward pass is NaN regardless of
	// the learning rate, so rollback-and-halve cannot recover.
	model.Params()[0].Value[0] = math.NaN()
	_, err = Fit(model, ds, Options{Epochs: 2, BatchSize: 16, LR: 1e-3, Seed: 3})
	if err == nil {
		t.Fatal("unrecoverable NaN model trained without error")
	}
}

func TestFitEmptyDataset(t *testing.T) {
	_, _, vcfg := testSetup(t)
	model, _ := vae.New(vcfg, rng.New(4))
	if _, err := Fit(model, &workload.Dataset{}, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestKLWarmupRestoresBeta(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	vcfg.BetaKL = 0.7
	model, _ := vae.New(vcfg, rng.New(5))
	_, err := Fit(model, ds, Options{Epochs: 4, BatchSize: 16, KLWarmupEpochs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if model.Config().BetaKL != 0.7 {
		t.Errorf("BetaKL after warmup = %g, want 0.7", model.Config().BetaKL)
	}
}

// TestFitDDPSingleWorkerMatchesFit: with one worker, the DDP path must
// reproduce single-device training exactly (allreduce is the identity).
func TestFitDDPSingleWorkerMatchesFit(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	opts := Options{Epochs: 3, BatchSize: 16, LR: 1e-3, Seed: 7}

	serial, err := vae.New(vcfg, rng.New(opts.Seed))
	if err != nil {
		t.Fatal(err)
	}
	dsCopy := &workload.Dataset{
		Configs:  append([]lattice.Config(nil), ds.Configs...),
		Conds:    append([]float64(nil), ds.Conds...),
		Energies: append([]float64(nil), ds.Energies...),
	}
	if _, err := Fit(serial, dsCopy, opts); err != nil {
		t.Fatal(err)
	}

	// DDP shuffles with seed + rank·0x9e37 = seed for rank 0... it uses a
	// different offset; equality requires the same stream. Compare loss
	// trajectories rather than exact weights if streams differ.
	ddpModel, ddpStats, err := FitDDP(vcfg, ds, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ddpStats) != 3 {
		t.Fatalf("%d epochs", len(ddpStats))
	}
	// Same seed stream (rank 0 offset is 0), same data order → identical
	// final weights.
	a := nn.FlattenValues(serial.Params(), nil)
	b := nn.FlattenValues(ddpModel.Params(), nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestFitDDPMultiWorker: training across 3 replicas must converge and
// return finite stats; the replicas' gradient averaging is exercised by
// the comm ring underneath.
func TestFitDDPMultiWorker(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	model, stats, err := FitDDP(vcfg, ds, 3, Options{Epochs: 6, BatchSize: 8, LR: 3e-3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || len(stats) != 6 {
		t.Fatal("missing results")
	}
	if stats[5].Recon >= stats[0].Recon {
		t.Errorf("DDP recon %g → %g did not decrease", stats[0].Recon, stats[5].Recon)
	}
	for _, s := range stats {
		if math.IsNaN(s.Recon) || math.IsNaN(s.KL) {
			t.Fatal("NaN loss")
		}
	}
}

func TestFitDDPValidation(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	if _, _, err := FitDDP(vcfg, ds, 0, Options{}); err == nil {
		t.Error("zero workers accepted")
	}
	tiny := &workload.Dataset{}
	if _, _, err := FitDDP(vcfg, tiny, 2, Options{}); err == nil {
		t.Error("undersized dataset accepted")
	}
}

// TestDDPDeterministic: identical seeds → identical final weights.
func TestDDPDeterministic(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	opts := Options{Epochs: 2, BatchSize: 8, LR: 1e-3, Seed: 9}
	m1, _, err := FitDDP(vcfg, ds, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := FitDDP(vcfg, ds, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := nn.FlattenValues(m1.Params(), nil)
	b := nn.FlattenValues(m2.Params(), nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DDP not deterministic")
		}
	}
}

func TestActiveLoop(t *testing.T) {
	m, _, vcfg := testSetup(t)
	model, history, err := ActiveLoop(m, ActiveLoopOptions{
		Rounds: 2,
		Gen: workload.GenOptions{
			Temps:          []float64{600, 2400},
			SamplesPerTemp: 20,
			EquilSweeps:    20,
			GapSweeps:      2,
			Seed:           10,
		},
		Train:      Options{Epochs: 4, BatchSize: 8, LR: 2e-3, Seed: 11},
		UseDLInGen: true,
		VAE:        vcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("no model")
	}
	if len(history) != 2 {
		t.Fatalf("%d rounds of history", len(history))
	}
	for r, stats := range history {
		if len(stats) != 4 {
			t.Fatalf("round %d has %d epochs", r, len(stats))
		}
	}
}

// TestFitContextCancel: cancellation mid-training returns the context
// error without corrupting the partially trained model.
func TestFitContextCancel(t *testing.T) {
	_, ds, cfg := testSetup(t)
	model, err := vae.New(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := FitContext(ctx, model, ds, Options{Epochs: 50, BatchSize: 8, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(stats) >= 50 {
		t.Fatalf("cancelled training ran all %d epochs", len(stats))
	}
	// The model still produces finite decode probabilities.
	probs := model.DecodeProbs(make([]float64, cfg.Latent), 0.5)
	for _, row := range probs {
		for _, p := range row {
			if math.IsNaN(p) {
				t.Fatal("NaN probability after cancelled training")
			}
		}
	}
}
