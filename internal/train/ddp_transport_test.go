package train

// Cross-backend DDP parity: the training trajectory must be bit-identical
// whether the replicas talk over in-process channels or real TCP sockets,
// because the transport backends share the exact collective schedules.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"deepthermo/internal/nn"
	"deepthermo/internal/rng"
	"deepthermo/internal/transport"
	"deepthermo/internal/vae"
)

func TestFitDDPEndpointTCPMatchesChan(t *testing.T) {
	_, ds, vcfg := testSetup(t)
	const workers = 2
	opts := Options{Epochs: 2, BatchSize: 16, LR: 1e-3, Seed: 11}

	// Reference: the in-process backend via FitDDP.
	refModel, refStats, err := FitDDP(vcfg, ds, workers, opts)
	if err != nil {
		t.Fatal(err)
	}

	// TCP: each rank is an independent replica that initializes its own
	// model from the shared seed and joins the world over loopback —
	// exactly what cmd/dtworker does across OS processes.
	co, err := transport.NewCoordinator("127.0.0.1:0", workers)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	models := make([]*vae.Model, workers)
	statsByRank := make([][]EpochStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := transport.Join(context.Background(), co.Addr(), transport.JoinOptions{Timeout: 20 * time.Second})
			if err != nil {
				errs[i] = err
				return
			}
			defer ep.Close()
			m, err := vae.New(vcfg, rng.New(opts.Seed))
			if err != nil {
				errs[i] = err
				return
			}
			models[ep.Rank()] = m
			stats, err := FitDDPEndpoint(context.Background(), m, ep, ds, opts)
			if err != nil {
				errs[i] = err
				return
			}
			statsByRank[ep.Rank()] = stats
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp replica %d: %v", i, err)
		}
	}

	// Rank-0 stats bit-identical to the chan run.
	if len(statsByRank[0]) != len(refStats) {
		t.Fatalf("tcp produced %d epochs, chan %d", len(statsByRank[0]), len(refStats))
	}
	for i := range refStats {
		if math.Float64bits(statsByRank[0][i].Recon) != math.Float64bits(refStats[i].Recon) ||
			math.Float64bits(statsByRank[0][i].KL) != math.Float64bits(refStats[i].KL) {
			t.Errorf("epoch %d stats differ across backends: tcp %+v chan %+v", i, statsByRank[0][i], refStats[i])
		}
	}

	// All replicas' weights bit-identical to the chan model.
	ref := nn.FlattenValues(refModel.Params(), nil)
	for r := 0; r < workers; r++ {
		got := nn.FlattenValues(models[r].Params(), nil)
		if len(got) != len(ref) {
			t.Fatalf("rank %d weight count %d != %d", r, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("rank %d weight %d differs across backends: %g vs %g", r, i, got[i], ref[i])
			}
		}
	}
}
