// Package train drives VAE proposal-model training, both single-device and
// distributed data parallel (DDP).
//
// The DDP path reproduces the paper's multi-GPU training structure: every
// worker holds a model replica, computes gradients on its data shard, and
// joins a ring allreduce (package comm) before an identical optimizer step,
// so replicas stay bit-identical — the same invariant NCCL/RCCL-based DDP
// maintains. The active-learning loop (retraining on fresh samples
// mid-run) at the bottom is the paper's sample→train→propose cycle.
package train

import (
	"context"
	"fmt"
	"math"
	"sync"

	"deepthermo/internal/alloy"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/nn"
	"deepthermo/internal/rng"
	"deepthermo/internal/tensor"
	"deepthermo/internal/transport"
	"deepthermo/internal/vae"
	"deepthermo/internal/workload"
)

// Options configures training.
type Options struct {
	Epochs    int
	BatchSize int
	LR        float64
	ClipNorm  float64 // 0 disables clipping
	Seed      uint64
	// KLWarmupEpochs linearly ramps the KL weight from 0 to the model's
	// configured BetaKL over this many epochs. Warmup prevents posterior
	// collapse in the small-data regime of the active-learning loop.
	KLWarmupEpochs int
}

func (o *Options) setDefaults() {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	if o.ClipNorm == 0 {
		o.ClipNorm = 5
	}
}

// EpochStats records the mean losses of one epoch.
type EpochStats struct {
	Epoch    int
	Recon    float64
	KL       float64
	Accuracy float64
	// Diverged counts divergence events (NaN/Inf loss or gradient norm)
	// absorbed while producing this epoch: each event rolled the weights
	// back to the last finite snapshot and halved the learning rate
	// before the epoch was retried.
	Diverged int
}

// TotalDiverged sums the divergence events across a training report.
func TotalDiverged(stats []EpochStats) int {
	n := 0
	for _, s := range stats {
		n += s.Diverged
	}
	return n
}

// maxDivergences bounds rollback-and-halve recovery attempts across a
// whole Fit run before training gives up. Generous: halving 50 times
// shrinks any learning rate by ~1e15.
const maxDivergences = 50

// batch assembles rows [lo,hi) of ds into a one-hot matrix and label views.
func batch(model *vae.Model, ds *workload.Dataset, lo, hi int) (*tensor.Matrix, []float64, []lattice.Config) {
	b := hi - lo
	nk := model.Config().Sites * model.Config().Species
	x := tensor.NewMatrix(b, nk)
	for i := 0; i < b; i++ {
		model.OneHot(ds.Configs[lo+i], x.Row(i))
	}
	return x, ds.Conds[lo:hi], ds.Configs[lo:hi]
}

// Fit trains model on ds with Adam and returns per-epoch statistics.
func Fit(model *vae.Model, ds *workload.Dataset, opts Options) ([]EpochStats, error) {
	return FitContext(context.Background(), model, ds, opts)
}

// FitContext is Fit with cooperative cancellation, polled once per batch.
// On cancellation the statistics of the epochs completed so far are
// returned alongside ctx's error; the model keeps the weights of the last
// optimizer step, so a partially trained model remains usable.
//
// Training is divergence-guarded: if a batch produces a NaN/Inf loss or
// gradient norm, the weights roll back to the last snapshot that
// completed a finite epoch, the learning rate is halved (with fresh
// optimizer moments), and the epoch is retried. The events are surfaced
// as EpochStats.Diverged rather than silently baked into a NaN model
// artifact; exceeding maxDivergences fails the run.
func FitContext(ctx context.Context, model *vae.Model, ds *workload.Dataset, opts Options) ([]EpochStats, error) {
	opts.setDefaults()
	if ds.Len() == 0 {
		return nil, fmt.Errorf("train: empty dataset")
	}
	ds = ds.Copy() // epoch shuffles must not reorder the caller's data
	src := rng.New(opts.Seed)
	lr := opts.LR
	opt := nn.NewAdam(lr)
	params := model.Params()
	betaFinal := model.Config().BetaKL
	snapshot := nn.FlattenValues(params, nil) // last known-finite weights
	clipNorm := opts.ClipNorm
	if clipNorm <= 0 {
		// ClipGradNorm with an infinite bound is a no-op clip that still
		// reports the global norm the guard needs.
		clipNorm = math.Inf(1)
	}
	totalDiverged, epochDiverged := 0, 0
	var stats []EpochStats
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		if opts.KLWarmupEpochs > 0 {
			ramp := float64(epoch+1) / float64(opts.KLWarmupEpochs)
			if ramp > 1 {
				ramp = 1
			}
			model.SetBetaKL(betaFinal * ramp)
		}
		ds.Shuffle(src)
		var agg vae.Losses
		steps := 0
		diverged := false
		for lo := 0; lo < ds.Len(); lo += opts.BatchSize {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			hi := lo + opts.BatchSize
			if hi > ds.Len() {
				hi = ds.Len()
			}
			x, conds, targets := batch(model, ds, lo, hi)
			nn.ZeroGrads(params)
			l := model.Step(x, conds, targets, src)
			norm := nn.ClipGradNorm(params, clipNorm)
			if !isFinite(l.Recon) || !isFinite(l.KL) || !isFinite(norm) {
				diverged = true
				break
			}
			opt.Step(params)
			agg.Recon += l.Recon
			agg.KL += l.KL
			agg.Accuracy += l.Accuracy
			steps++
		}
		if diverged {
			totalDiverged++
			epochDiverged++
			if totalDiverged > maxDivergences {
				return stats, fmt.Errorf("train: diverged %d times (lr halved to %g) without recovering", totalDiverged, lr)
			}
			nn.SetValues(params, snapshot)
			lr /= 2
			opt = nn.NewAdam(lr) // stale Adam moments point at the blow-up
			epoch--              // retry this epoch at the reduced rate
			continue
		}
		stats = append(stats, EpochStats{
			Epoch:    epoch,
			Recon:    agg.Recon / float64(steps),
			KL:       agg.KL / float64(steps),
			Accuracy: agg.Accuracy / float64(steps),
			Diverged: epochDiverged,
		})
		epochDiverged = 0
		snapshot = nn.FlattenValues(params, snapshot)
	}
	return stats, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func gradsFinite(gs []float64) bool {
	for _, g := range gs {
		if !isFinite(g) {
			return false
		}
	}
	return true
}

// FitDDP trains with `workers` data-parallel replicas over the in-process
// transport backend and returns the converged model (identical on all
// replicas) plus rank-0 epoch statistics. The per-step effective batch is
// workers × BatchSize, as in the paper's scaled training.
func FitDDP(cfg vae.Config, ds *workload.Dataset, workers int, opts Options) (*vae.Model, []EpochStats, error) {
	return FitDDPContext(context.Background(), cfg, ds, workers, opts)
}

// FitDDPContext is FitDDP with cooperative cancellation: a cancelled
// context aborts the replicas at their next communication operation.
func FitDDPContext(ctx context.Context, cfg vae.Config, ds *workload.Dataset, workers int, opts Options) (*vae.Model, []EpochStats, error) {
	opts.setDefaults()
	if workers < 1 {
		return nil, nil, fmt.Errorf("train: need at least one worker")
	}
	if ds.Len() < workers {
		return nil, nil, fmt.Errorf("train: dataset of %d samples cannot shard over %d workers", ds.Len(), workers)
	}
	world := transport.NewChanWorld(workers)

	// All replicas start from identical weights: same init stream.
	models := make([]*vae.Model, workers)
	for i := range models {
		m, err := vae.New(cfg, rng.New(opts.Seed))
		if err != nil {
			return nil, nil, err
		}
		models[i] = m
	}

	allStats := make([][]EpochStats, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			stats, err := FitDDPEndpoint(ctx, models[rank], world.Endpoint(rank), ds, opts)
			if err != nil {
				errCh <- err
				return
			}
			allStats[rank] = stats
		}(r)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, nil, err
	}
	return models[0], allStats[0], nil
}

// FitDDPEndpoint runs one replica's DDP training loop over any transport
// endpoint — the unit one OS process (cmd/dtworker) executes when the
// world spans machines. model must be initialized identically on every
// rank (same config, same init seed); ds is the FULL dataset, sharded here
// by the endpoint's rank. Epoch statistics are returned on rank 0 and nil
// elsewhere.
//
// Determinism note: every replica shuffles its own shard with its own
// stream; the allreduced gradients (and therefore the weights) are
// identical on all replicas at every step because averaging commutes with
// the shard order — and because the ring allreduce schedule is identical
// across transport backends, the trajectory is bit-identical whether the
// ranks are goroutines or processes.
func FitDDPEndpoint(ctx context.Context, model *vae.Model, ep transport.Endpoint, full *workload.Dataset, opts Options) ([]EpochStats, error) {
	opts.setDefaults()
	rank, workers := ep.Rank(), ep.Size()
	shard := full.Shard(rank, workers).Copy() // local shuffles stay local
	if shard.Len() == 0 {
		return nil, fmt.Errorf("train: rank %d received an empty shard", rank)
	}
	src := rng.New(opts.Seed + uint64(rank)*0x9e37)
	opt := nn.NewAdam(opts.LR)
	params := model.Params()
	grads := make([]float64, nn.NumParams(params))
	stepsPerEpoch := (shard.Len() + opts.BatchSize - 1) / opts.BatchSize

	var stats []EpochStats
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		shard.Shuffle(src)
		var agg vae.Losses
		for step := 0; step < stepsPerEpoch; step++ {
			lo := step * opts.BatchSize
			if lo >= shard.Len() {
				lo = shard.Len() - 1 // degenerate tiny shard: repeat last sample
			}
			hi := lo + opts.BatchSize
			if hi > shard.Len() {
				hi = shard.Len()
			}
			x, conds, targets := batch(model, shard, lo, hi)
			nn.ZeroGrads(params)
			l := model.Step(x, conds, targets, src)
			if opts.ClipNorm > 0 {
				nn.ClipGradNorm(params, opts.ClipNorm)
			}
			// Gradient averaging across replicas: the DDP allreduce. The
			// fault-aware variant keeps a dead or disconnected peer from
			// hanging the surviving replicas forever.
			nn.FlattenGrads(params, grads)
			if err := ep.AllreduceCtx(ctx, grads, transport.Sum); err != nil {
				return nil, fmt.Errorf("train: rank %d: allreduce at epoch %d step %d: %w", rank, epoch, step, err)
			}
			tensor.Scale(1/float64(workers), grads)
			// Divergence guard: the allreduced gradients are identical on
			// every replica, so every rank takes this branch in lockstep
			// and the replicas stay bit-identical. DDP has no per-rank
			// rollback protocol, so fail loudly instead of stepping a NaN
			// into every replica.
			if !gradsFinite(grads) {
				return nil, fmt.Errorf("train: rank %d: non-finite allreduced gradient at epoch %d step %d", rank, epoch, step)
			}
			nn.SetGrads(params, grads)
			opt.Step(params)
			agg.Recon += l.Recon
			agg.KL += l.KL
			agg.Accuracy += l.Accuracy
		}
		if rank == 0 {
			stats = append(stats, EpochStats{
				Epoch:    epoch,
				Recon:    agg.Recon / float64(stepsPerEpoch),
				KL:       agg.KL / float64(stepsPerEpoch),
				Accuracy: agg.Accuracy / float64(stepsPerEpoch),
			})
		}
		if err := ep.BarrierCtx(ctx); err != nil {
			return nil, fmt.Errorf("train: rank %d: barrier after epoch %d: %w", rank, epoch, err)
		}
	}
	return stats, nil
}

// ActiveLoopOptions configures the sample→train→propose cycle.
type ActiveLoopOptions struct {
	Rounds     int // retraining rounds (default 3)
	Gen        workload.GenOptions
	Train      Options
	UseDLInGen bool    // after round 0, generate with a DL+swap mixture
	DLWeight   float64 // mixture weight of the DL proposal (default 0.1)
	VAE        vae.Config
}

// ActiveLoop runs the full DeepThermo training cycle: generate data with
// the current best proposal, retrain the VAE, repeat. Returns the final
// model and the loss trajectory across rounds.
func ActiveLoop(m *alloy.Model, opts ActiveLoopOptions) (*vae.Model, [][]EpochStats, error) {
	if opts.Rounds == 0 {
		opts.Rounds = 3
	}
	if opts.DLWeight == 0 {
		opts.DLWeight = 0.1
	}
	var model *vae.Model
	var history [][]EpochStats
	for round := 0; round < opts.Rounds; round++ {
		gen := opts.Gen
		gen.Seed = opts.Gen.Seed + uint64(round)
		ds, err := generateRound(m, model, gen, opts)
		if err != nil {
			return nil, nil, err
		}
		if model == nil {
			model, err = vae.New(opts.VAE, rng.New(opts.Train.Seed))
			if err != nil {
				return nil, nil, err
			}
		}
		tr := opts.Train
		tr.Seed = opts.Train.Seed + uint64(round)*31
		stats, err := Fit(model, ds, tr)
		if err != nil {
			return nil, nil, err
		}
		history = append(history, stats)
	}
	return model, history, nil
}

// generateRound produces a round's dataset, optionally mixing the current
// DL proposal into the generator chains.
func generateRound(m *alloy.Model, model *vae.Model, gen workload.GenOptions, opts ActiveLoopOptions) (*workload.Dataset, error) {
	if model == nil || !opts.UseDLInGen {
		return workload.Generate(m, gen)
	}
	// Mixture generation: one chain per temperature with swap + DL moves.
	if gen.Quota == nil {
		n, k := m.Lattice().NumSites(), m.NumSpecies()
		gen.Quota = make([]int, k)
		for i := range gen.Quota {
			gen.Quota[i] = n / k
		}
		gen.Quota[k-1] += n - (n/k)*k
	}
	streams := rng.NewStreams(gen.Seed, len(gen.Temps))
	ds := &workload.Dataset{}
	for ti, t := range gen.Temps {
		src := streams[ti]
		// Build the start configuration from the quota so its composition
		// matches the DL proposal's constraint exactly.
		cfg := make(lattice.Config, 0, m.Lattice().NumSites())
		for sp, q := range gen.Quota {
			for i := 0; i < q; i++ {
				cfg = append(cfg, lattice.Species(sp))
			}
		}
		src.Shuffle(len(cfg), func(i, j int) { cfg[i], cfg[j] = cfg[j], cfg[i] })
		prop := mc.NewMixture(
			[]mc.Proposal{
				mc.NewSwapProposal(m),
				mc.NewGlobalProposal(model.CloneWeights(src), m, gen.Quota, mc.CondForT(t)),
			},
			[]float64{1 - opts.DLWeight, opts.DLWeight},
		)
		s := mc.NewSampler(m, cfg, prop, src)
		equil := gen.EquilSweeps
		if equil == 0 {
			equil = 200
		}
		gap := gen.GapSweeps
		if gap == 0 {
			gap = 10
		}
		for i := 0; i < equil; i++ {
			s.Sweep(t)
		}
		for i := 0; i < gen.SamplesPerTemp; i++ {
			for g := 0; g < gap; g++ {
				s.Sweep(t)
			}
			ds.Append(s.Cfg.Clone(), mc.CondForT(t), s.E)
		}
	}
	ds.Shuffle(rng.New(gen.Seed ^ 0x5a5a))
	return ds, nil
}
