// Package fleet implements the shared-directory coordination layer that
// lets N stateless dtserve replicas serve one job queue and one artifact
// store: any replica may claim a job, a crashed replica's jobs are taken
// over by survivors, and a stale owner that wakes from a GC pause or
// SIGSTOP cannot clobber a successor's work.
//
// The design is lease-based, in the spirit of the elastic REWL runtime's
// claim/heartbeat/fence shape, but implemented purely over a shared
// filesystem directory so replicas need no network path to each other:
//
//   - Every job has exactly one lease file. Enqueue seeds it, via
//     O_CREAT|O_EXCL, with a released zero-token placeholder, and it is
//     never deleted afterwards — release marks the lease content released
//     instead of removing the file. Creating a file never confers
//     ownership, so the creation race is harmless: ownership is only ever
//     decided under the grab (below).
//
//   - Every later mutation — heartbeat renewal, expiry takeover, release,
//     and the fenced commit section — must first "grab" the lease file by
//     atomically renaming it to a mutator-private name. Rename of one
//     source path succeeds for exactly one caller, so the grab is a
//     filesystem mutex: whoever holds the renamed file is the only
//     process that can read-modify-write it, and it is renamed back to
//     the canonical path when done. A process that dies holding a grab
//     leaves an orphan, which SweepOrphans restores after a grace period.
//
//   - Ownership carries a monotonic fencing token. The token lives in
//     the lease content and is shadowed by a fence file holding the
//     highest token ever issued for the job; takeover issues
//     max(lease, fence)+1, so tokens strictly increase across ownership
//     changes even when the lease content itself is torn by a crash
//     mid-write. Fenced writers present their token; a mismatch (a newer
//     owner exists) is rejected without touching shared state.
//
// Fault injection: a chaos.Plan with LoseHeartbeat / StaleWrite /
// TornLease faults makes the failure paths deterministic — see the kind
// docs in package chaos.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepthermo/internal/chaos"
	"deepthermo/internal/fsx"
)

// Errors reported by the lease store.
var (
	// ErrHeld means another replica holds an unexpired lease on the job.
	ErrHeld = errors.New("fleet: lease held by another replica")
	// ErrFenced means the caller's fencing token is stale: a newer owner
	// has been issued a higher token, and the attempted write was refused.
	ErrFenced = errors.New("fleet: fencing token stale")
	// ErrLost means the lease could not be grabbed (missing or in
	// transition for longer than the retry window).
	ErrLost = errors.New("fleet: lease unavailable")
	// ErrNoJob means the job has no state record in the store.
	ErrNoJob = errors.New("fleet: no such job")
)

// Phase is the shared-store lifecycle phase of a job. It mirrors the
// server's job states but is owned by this package so the store does not
// depend on the serving layer.
type Phase string

const (
	Pending     Phase = "pending"
	Running     Phase = "running"
	Interrupted Phase = "interrupted"
	Done        Phase = "done"
	Failed      Phase = "failed"
	Cancelled   Phase = "cancelled"
)

// Terminal reports whether p is a final phase (the job will never run
// again and its lease is released).
func (p Phase) Terminal() bool {
	return p == Done || p == Failed || p == Cancelled
}

// State is one job's shared state record. Payload is the owning
// subsystem's snapshot (the server stores its Job JSON there) and is
// opaque to the store.
type State struct {
	Job       string          `json:"job"`
	Phase     Phase           `json:"phase"`
	Fence     uint64          `json:"fence"`
	Owner     string          `json:"owner,omitempty"`
	NotBefore time.Time       `json:"not_before,omitempty"` // retry-backoff gate
	Updated   time.Time       `json:"updated"`
	Payload   json.RawMessage `json:"payload,omitempty"`
}

// Lease is the decoded content of a lease file.
type Lease struct {
	Job      string    `json:"job"`
	Owner    string    `json:"owner"`
	Token    uint64    `json:"token"`
	Expires  time.Time `json:"expires"`
	Renewed  time.Time `json:"renewed"`
	Released bool      `json:"released,omitempty"`
}

// Active reports whether the lease currently excludes other claimers.
func (l Lease) Active(now time.Time) bool {
	return !l.Released && now.Before(l.Expires)
}

// Config parameterizes Open.
type Config struct {
	// Dir is the shared fleet directory (required). All replicas of one
	// fleet point at the same Dir.
	Dir string
	// Replica is this process's unique identity within the fleet
	// (required). It is recorded as the owner in leases and state records.
	Replica string
	// TTL is how long a lease stays valid without renewal (default 10s).
	// A replica must heartbeat well inside the TTL (TTL/3 is the usual
	// cadence); a lease unrenewed for TTL is claimable by any replica.
	TTL time.Duration
	// Plan optionally injects deterministic lease faults (LoseHeartbeat,
	// StaleWrite, TornLease) for this replica, addressed as Rank.
	Plan *chaos.Plan
	Rank int
}

// Store is one replica's handle on the shared fleet directory. All
// methods are safe for concurrent use.
type Store struct {
	dir     string
	replica string
	ttl     time.Duration
	plan    *chaos.Plan
	rank    int

	grabSeq atomic.Int64 // uniquifies grab file names
	hbSeq   atomic.Int64 // heartbeat sequence, drives chaos queries
	cmtSeq  atomic.Int64 // fenced-commit sequence, drives chaos queries

	claims          atomic.Int64
	takeovers       atomic.Int64
	heartbeats      atomic.Int64
	heartbeatFails  atomic.Int64
	fenceRejections atomic.Int64

	mu       sync.Mutex
	held     map[string]uint64 // job → token this replica believes it holds
	lastErr  error             // last scan/IO failure, cleared on success
	lastScan time.Time
}

// Open creates (if needed) the fleet directory layout and returns a
// store handle for one replica.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("fleet: Config.Dir is required")
	}
	if cfg.Replica == "" {
		return nil, errors.New("fleet: Config.Replica is required")
	}
	if strings.ContainsAny(cfg.Replica, "/\\ ") {
		return nil, fmt.Errorf("fleet: replica id %q contains path separators or spaces", cfg.Replica)
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 10 * time.Second
	}
	s := &Store{
		dir:     cfg.Dir,
		replica: cfg.Replica,
		ttl:     cfg.TTL,
		plan:    cfg.Plan,
		rank:    cfg.Rank,
		held:    make(map[string]uint64),
	}
	for _, sub := range []string{"state", "leases", "cancel", "artifacts", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fleet: creating %s dir: %w", sub, err)
		}
	}
	return s, nil
}

// Dir returns the shared fleet directory.
func (s *Store) Dir() string { return s.dir }

// Replica returns this store's replica identity.
func (s *Store) Replica() string { return s.replica }

// TTL returns the lease time-to-live.
func (s *Store) TTL() time.Duration { return s.ttl }

// ArtifactsDir returns the shared artifact-registry directory.
func (s *Store) ArtifactsDir() string { return filepath.Join(s.dir, "artifacts") }

// CheckpointDir returns the shared REWL checkpoint directory for a job,
// so a takeover resumes from the dead owner's last committed checkpoint.
func (s *Store) CheckpointDir(job string) string {
	return filepath.Join(s.dir, "checkpoints", job)
}

func (s *Store) statePath(job string) string  { return filepath.Join(s.dir, "state", job+".json") }
func (s *Store) leasePath(job string) string  { return filepath.Join(s.dir, "leases", job+".lease") }
func (s *Store) fencePath(job string) string  { return filepath.Join(s.dir, "leases", job+".fence") }
func (s *Store) cancelPath(job string) string { return filepath.Join(s.dir, "cancel", job) }

// validJobID rejects IDs that would escape the store's directories when
// joined into paths.
func validJobID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("fleet: invalid job id %q", id)
	}
	return nil
}

// Enqueue writes the initial (pending, fence 0) state record for a new
// job, seeding its lease file first so the state record's existence
// implies the lease file's. IDs must be fleet-unique; replicas prefix
// their own identity to guarantee it, so the atomic write cannot race
// another enqueue.
func (s *Store) Enqueue(job string, payload json.RawMessage) error {
	if err := validJobID(job); err != nil {
		return err
	}
	if err := s.ensureLease(job); err != nil {
		return err
	}
	st := State{Job: job, Phase: Pending, Owner: s.replica, Updated: time.Now().UTC(), Payload: payload}
	return s.writeStateFile(st)
}

func (s *Store) writeStateFile(st State) error {
	return fsx.WriteFileAtomic(s.statePath(st.Job), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(st)
	})
}

// GetState reads one job's state record.
func (s *Store) GetState(job string) (State, error) {
	if err := validJobID(job); err != nil {
		return State{}, err
	}
	raw, err := os.ReadFile(s.statePath(job))
	if errors.Is(err, os.ErrNotExist) {
		return State{}, fmt.Errorf("%w: %q", ErrNoJob, job)
	}
	if err != nil {
		return State{}, err
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		return State{}, fmt.Errorf("fleet: corrupt state record for %q: %w", job, err)
	}
	return st, nil
}

// States scans every job state record, sorted by job ID. Records that
// fail to parse (a torn write from a crashed replica) are skipped: the
// scan reports the healthy view and notes the failure in Health.
func (s *Store) States() ([]State, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "state", "*.json"))
	s.noteScan(err)
	if err != nil {
		return nil, err
	}
	out := make([]State, 0, len(matches))
	for _, p := range matches {
		raw, err := os.ReadFile(p)
		if err != nil {
			continue // racing a concurrent atomic replace
		}
		var st State
		if err := json.Unmarshal(raw, &st); err != nil {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out, nil
}

// WriteState durably replaces a job's state record under fence
// validation: the write happens only while holding the job's lease grab
// with a token that is still current, so a stale owner's update can
// never overwrite a successor's record.
func (s *Store) WriteState(st State, token uint64) error {
	st.Fence = token
	st.Owner = s.replica
	st.Updated = time.Now().UTC()
	return s.WithLease(st.Job, token, func() error {
		return s.writeStateFile(st)
	})
}

// Cancel drops a cancellation marker for a job. The owning replica
// observes it at its next heartbeat and cancels the run; an unclaimed
// pending job is retired by whichever replica claims it next.
func (s *Store) Cancel(job string) error {
	if err := validJobID(job); err != nil {
		return err
	}
	f, err := os.OpenFile(s.cancelPath(job), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// Cancelled reports whether a cancellation marker exists for the job.
func (s *Store) Cancelled(job string) bool {
	_, err := os.Stat(s.cancelPath(job))
	return err == nil
}

// ClearCancel removes a job's cancellation marker (after the cancel has
// been honored and recorded in the state record).
func (s *Store) ClearCancel(job string) {
	os.Remove(s.cancelPath(job))
}

// Held returns how many leases this replica currently believes it holds.
func (s *Store) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.held)
}

// Counter snapshots for /metrics.
func (s *Store) Claims() int64          { return s.claims.Load() }
func (s *Store) Takeovers() int64       { return s.takeovers.Load() }
func (s *Store) Heartbeats() int64      { return s.heartbeats.Load() }
func (s *Store) HeartbeatFails() int64  { return s.heartbeatFails.Load() }
func (s *Store) FenceRejections() int64 { return s.fenceRejections.Load() }

// noteScan records the outcome of the latest store scan for Health.
func (s *Store) noteScan(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastErr = err
	s.lastScan = time.Now()
}

// Health reports nil when the store's backing directory is reachable and
// the latest scan succeeded; otherwise the failure, so /readyz can
// withdraw the replica from rotation before it strands claims.
func (s *Store) Health() error {
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	if lastErr != nil {
		return fmt.Errorf("fleet: last store scan failed: %w", lastErr)
	}
	if _, err := os.Stat(filepath.Join(s.dir, "leases")); err != nil {
		return fmt.Errorf("fleet: lease dir unreachable: %w", err)
	}
	return nil
}
