package fleet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepthermo/internal/chaos"
)

func newStore(t *testing.T, dir, replica string, ttl time.Duration) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Replica: replica, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClaimRace: many replicas race to claim the same brand-new job;
// exactly one must win, and the winner's token must be 1.
func TestClaimRace(t *testing.T) {
	dir := t.TempDir()
	const replicas = 8
	stores := make([]*Store, replicas)
	for i := range stores {
		stores[i] = newStore(t, dir, "r"+string(rune('a'+i)), time.Second)
	}
	if err := stores[0].Enqueue("job-x", nil); err != nil {
		t.Fatal(err)
	}

	var wins atomic.Int64
	var winToken atomic.Uint64
	var wg sync.WaitGroup
	for _, s := range stores {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			token, tookOver, err := s.Acquire("job-x")
			if err == nil {
				wins.Add(1)
				winToken.Store(token)
				if tookOver {
					t.Errorf("fresh claim reported as takeover")
				}
				return
			}
			if !errors.Is(err, ErrHeld) {
				t.Errorf("loser got %v, want ErrHeld", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d replicas won the claim, want exactly 1", wins.Load())
	}
	if winToken.Load() != 1 {
		t.Fatalf("first token = %d, want 1", winToken.Load())
	}
}

// TestTakeoverRace: an expired lease is raced by two replicas; exactly
// one takes over, and the fencing token strictly increases.
func TestTakeoverRace(t *testing.T) {
	dir := t.TempDir()
	owner := newStore(t, dir, "owner", 30*time.Millisecond)
	a := newStore(t, dir, "a", 30*time.Millisecond)
	b := newStore(t, dir, "b", 30*time.Millisecond)

	if err := owner.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	token, _, err := owner.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the lease expire unrenewed

	var wins atomic.Int64
	var winToken atomic.Uint64
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok, tookOver, err := s.Acquire("j")
			if err == nil {
				wins.Add(1)
				winToken.Store(tok)
				if !tookOver {
					t.Errorf("expiry takeover reported as fresh claim")
				}
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("loser got %v, want ErrHeld", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d replicas took over, want exactly 1", wins.Load())
	}
	if winToken.Load() <= token {
		t.Fatalf("takeover token %d not greater than expired token %d", winToken.Load(), token)
	}
}

// TestHeartbeatKeepsLeaseAtTTLBoundary: a lease renewed at a cadence
// inside the TTL stays held past several TTL multiples, and becomes
// claimable within one TTL of the last renewal once heartbeats stop.
func TestHeartbeatKeepsLeaseAtTTLBoundary(t *testing.T) {
	dir := t.TempDir()
	ttl := 60 * time.Millisecond
	owner := newStore(t, dir, "owner", ttl)
	rival := newStore(t, dir, "rival", ttl)

	if err := owner.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	token, _, err := owner.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}

	// Heartbeat at TTL/3 for 4×TTL; the rival polls for takeover the whole
	// time and must never win.
	stop := make(chan struct{})
	var rivalWon atomic.Bool
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := rival.Acquire("j"); err == nil {
				rivalWon.Store(true)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(4 * ttl)
	for time.Now().Before(deadline) {
		if err := owner.Heartbeat("j", token); err != nil {
			t.Fatalf("heartbeat while renewing: %v", err)
		}
		time.Sleep(ttl / 3)
	}
	close(stop)
	if rivalWon.Load() {
		t.Fatal("rival acquired the lease despite live heartbeats")
	}

	// Stop heartbeating: the rival must be able to take over once the TTL
	// has elapsed, and not before the lease's recorded expiry.
	lease, ok := owner.PeekLease("j")
	if !ok {
		t.Fatal("lease unreadable after renewals")
	}
	if _, _, err := rival.Acquire("j"); !errors.Is(err, ErrHeld) {
		t.Fatalf("takeover before expiry: err=%v, want ErrHeld", err)
	}
	time.Sleep(time.Until(lease.Expires) + 10*time.Millisecond)
	newTok, tookOver, err := rival.Acquire("j")
	if err != nil || !tookOver {
		t.Fatalf("takeover after expiry failed: token=%d tookOver=%v err=%v", newTok, tookOver, err)
	}
	if newTok <= token {
		t.Fatalf("takeover token %d not greater than %d", newTok, token)
	}
}

// TestFencedStaleOwnerCommitRejected: after a takeover, the previous
// owner's fenced commit must be rejected without running its body, and
// its state write must not reach the shared store.
func TestFencedStaleOwnerCommitRejected(t *testing.T) {
	dir := t.TempDir()
	ttl := 40 * time.Millisecond
	stale := newStore(t, dir, "stale", ttl)
	succ := newStore(t, dir, "succ", ttl)

	if err := stale.Enqueue("j", json.RawMessage(`{"v":"orig"}`)); err != nil {
		t.Fatal(err)
	}
	staleTok, _, err := stale.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(ttl + 20*time.Millisecond)
	succTok, tookOver, err := succ.Acquire("j")
	if err != nil || !tookOver {
		t.Fatalf("successor takeover failed: %v", err)
	}
	if err := succ.WriteState(State{Job: "j", Phase: Running, Payload: json.RawMessage(`{"v":"succ"}`)}, succTok); err != nil {
		t.Fatalf("successor state write: %v", err)
	}

	ran := false
	err = stale.WithLease("j", staleTok, func() error { ran = true; return nil })
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale commit err = %v, want ErrFenced", err)
	}
	if ran {
		t.Fatal("fenced commit body ran")
	}
	if err := stale.WriteState(State{Job: "j", Phase: Done, Payload: json.RawMessage(`{"v":"stale"}`)}, staleTok); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale state write err = %v, want ErrFenced", err)
	}
	if stale.FenceRejections() == 0 {
		t.Error("fence rejection not counted")
	}

	st, err := succ.GetState("j")
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Payload) != `{"v":"succ"}` || st.Fence != succTok {
		t.Fatalf("shared state clobbered by stale owner: %+v", st)
	}

	// The stale owner's heartbeat must also report the fence loss.
	if err := stale.Heartbeat("j", staleTok); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale heartbeat err = %v, want ErrFenced", err)
	}
}

// TestNoDoubleOwnership hammers claim/heartbeat/release across replicas
// and jobs with an aggressive TTL and asserts the protocol's safety
// property: every fenced write that reaches shared state carries a token
// that is monotonic per job and owned by exactly one replica. A lease is
// NOT wall-clock mutual exclusion — a holder stalled past its TTL loses
// the job to a takeover and is fenced on its next operation (that path
// fires routinely here under -race slowdowns) — so the invariant is
// checked on the writes the fence actually guards, via a shared log
// appended to only inside WithLease bodies.
func TestNoDoubleOwnership(t *testing.T) {
	dir := t.TempDir()
	ttl := 50 * time.Millisecond
	const replicas = 4
	jobIDs := []string{"j0", "j1", "j2"}
	seed := newStore(t, dir, "seed", ttl)
	for _, id := range jobIDs {
		if err := seed.Enqueue(id, nil); err != nil {
			t.Fatal(err)
		}
	}

	type entry struct {
		replica string
		token   uint64
	}
	var logMu sync.Mutex
	writeLog := make(map[string][]entry) // job → fenced writes, in commit order

	var wg sync.WaitGroup
	deadline := time.Now().Add(600 * time.Millisecond)
	stores := make([]*Store, replicas)
	for r := 0; r < replicas; r++ {
		s := newStore(t, dir, "r"+string(rune('0'+r)), ttl)
		stores[r] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				for _, id := range jobIDs {
					token, _, err := s.Acquire(id)
					if err != nil {
						continue
					}
					// Commit a few fenced writes, renewing in between. Any
					// ErrFenced means a rival took over after our TTL lapsed
					// (legitimate under scheduling stalls): abandon the job.
					fenced := false
					for i := 0; i < 3 && !fenced; i++ {
						err := s.WithLease(id, token, func() error {
							logMu.Lock()
							writeLog[id] = append(writeLog[id], entry{s.Replica(), token})
							logMu.Unlock()
							return nil
						})
						switch {
						case errors.Is(err, ErrFenced):
							fenced = true
						case err != nil:
							t.Errorf("fenced write: %v", err)
						default:
							time.Sleep(2 * time.Millisecond)
							if err := s.Heartbeat(id, token); errors.Is(err, ErrFenced) {
								fenced = true
							}
						}
					}
					if !fenced {
						if err := s.Release(id, token); err != nil && !errors.Is(err, ErrFenced) {
							t.Errorf("release: %v", err)
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, id := range jobIDs {
		entries := writeLog[id]
		total += len(entries)
		owner := make(map[uint64]string)
		last := uint64(0)
		for i, e := range entries {
			if e.token < last {
				t.Errorf("job %s: write %d carries token %d after token %d committed — a fenced stale write reached shared state", id, i, e.token, last)
			}
			last = e.token
			if prev, ok := owner[e.token]; ok && prev != e.replica {
				t.Errorf("job %s: token %d used by both %s and %s — two live leases", id, e.token, prev, e.replica)
			}
			owner[e.token] = e.replica
		}
	}
	if total == 0 {
		t.Fatal("no fenced writes committed; hammer exercised nothing")
	}
	var rejections int64
	for _, s := range stores {
		rejections += s.FenceRejections()
	}
	t.Logf("fenced writes=%d rejections=%d", total, rejections)
}

// TestTornLeaseRecovery: a torn (truncated) lease renewal — injected via
// a chaos TornLease fault — must not cost the rightful owner its lease:
// the next heartbeat recovers through the fence file and restores the
// lease content.
func TestTornLeaseRecovery(t *testing.T) {
	dir := t.TempDir()
	plan := chaos.NewPlan(chaos.Fault{Rank: 0, Step: 2, Kind: chaos.TornLease})
	s, err := Open(Config{Dir: dir, Replica: "owner", TTL: time.Second, Plan: plan, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	token, _, err := s.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Heartbeat("j", token); err != nil { // seq 1: clean
		t.Fatal(err)
	}
	if err := s.Heartbeat("j", token); err != nil { // seq 2: torn write
		t.Fatal(err)
	}
	if _, ok := s.PeekLease("j"); ok {
		t.Fatal("lease readable after torn write — fault did not land")
	}
	if err := s.Heartbeat("j", token); err != nil { // seq 3: recovers via fence
		t.Fatalf("heartbeat after torn lease: %v", err)
	}
	l, ok := s.PeekLease("j")
	if !ok || l.Token != token || l.Owner != "owner" {
		t.Fatalf("lease not restored after torn write: %+v ok=%v", l, ok)
	}
}

// TestLoseHeartbeatFaultExpiresLease: a chaos LoseHeartbeat fault
// silences renewals; the lease expires under the owner and a rival takes
// over, after which the owner is fenced.
func TestLoseHeartbeatFaultExpiresLease(t *testing.T) {
	dir := t.TempDir()
	ttl := 60 * time.Millisecond
	plan := chaos.NewPlan(chaos.Fault{Rank: 0, Step: 1, Kind: chaos.LoseHeartbeat})
	owner, err := Open(Config{Dir: dir, Replica: "owner", TTL: ttl, Plan: plan, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	rival := newStore(t, dir, "rival", ttl)

	if err := owner.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	token, _, err := owner.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}
	// Every heartbeat from seq 1 on is lost; they report success but renew
	// nothing.
	deadline := time.Now().Add(2 * ttl)
	for time.Now().Before(deadline) {
		if err := owner.Heartbeat("j", token); err != nil {
			t.Fatalf("lost heartbeat surfaced an error: %v", err)
		}
		time.Sleep(ttl / 4)
	}
	rTok, tookOver, err := rival.Acquire("j")
	if err != nil || !tookOver {
		t.Fatalf("rival takeover after lost heartbeats: token=%d tookOver=%v err=%v", rTok, tookOver, err)
	}
	if err := owner.WithLease("j", token, func() error { return nil }); !errors.Is(err, ErrFenced) {
		t.Fatalf("paused owner's commit err = %v, want ErrFenced", err)
	}
}

// TestStaleWriteFaultFencedAfterTakeover: the StaleWrite chaos fault
// stalls a commit past lease expiry; with a rival standing by to take
// over, the late commit must be fence-rejected.
func TestStaleWriteFaultFencedAfterTakeover(t *testing.T) {
	dir := t.TempDir()
	ttl := 50 * time.Millisecond
	plan := chaos.NewPlan(chaos.Fault{Rank: 0, Step: 1, Kind: chaos.StaleWrite})
	owner, err := Open(Config{Dir: dir, Replica: "owner", TTL: ttl, Plan: plan, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	rival := newStore(t, dir, "rival", ttl)
	if err := owner.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	token, _, err := owner.Acquire("j")
	if err != nil {
		t.Fatal(err)
	}

	// Rival keeps polling; it wins the lease the moment the owner's stall
	// lets the TTL lapse.
	go func() {
		for {
			if _, _, err := rival.Acquire("j"); err == nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ran := false
	err = owner.WithLease("j", token, func() error { ran = true; return nil })
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale write err = %v (ran=%v), want ErrFenced", err, ran)
	}
}

// TestSweepOrphans: a grab file abandoned by a crashed mutator is
// restored to the canonical path once it is old enough, making the job
// claimable again.
func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	ttl := 20 * time.Millisecond
	s := newStore(t, dir, "a", ttl)
	if err := s.Enqueue("j", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Acquire("j"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-mutation: rename the lease to a grab path and
	// abandon it.
	orphan := s.leasePath("j") + ".grab-dead-1"
	if err := os.Rename(s.leasePath("j"), orphan); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	if s.Claimable("j") {
		t.Fatal("job claimable while its lease is orphaned (pre-sweep)")
	}
	if n := s.SweepOrphans(); n != 1 {
		t.Fatalf("SweepOrphans restored %d, want 1", n)
	}
	if _, err := os.Stat(s.leasePath("j")); err != nil {
		t.Fatalf("lease not restored: %v", err)
	}
	time.Sleep(ttl + 10*time.Millisecond)
	if _, tookOver, err := s.Acquire("j"); err != nil || !tookOver {
		t.Fatalf("takeover of restored lease failed: %v", err)
	}
}

// TestStateScanSkipsCorrupt: a torn state record doesn't poison States.
func TestStateScanSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, dir, "a", time.Second)
	if err := s.Enqueue("good", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "state", "bad.json"), []byte(`{"job": "ba`), 0o644); err != nil {
		t.Fatal(err)
	}
	states, err := s.States()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Job != "good" {
		t.Fatalf("States() = %+v, want just the good record", states)
	}
	if err := s.Health(); err != nil {
		t.Fatalf("Health after scan: %v", err)
	}
}

// TestCancelMarker round-trips the cancellation marker.
func TestCancelMarker(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, dir, "a", time.Second)
	if s.Cancelled("j") {
		t.Fatal("cancelled before marker")
	}
	if err := s.Cancel("j"); err != nil {
		t.Fatal(err)
	}
	if !s.Cancelled("j") {
		t.Fatal("marker not observed")
	}
	s.ClearCancel("j")
	if s.Cancelled("j") {
		t.Fatal("marker survived ClearCancel")
	}
}

// TestJobIDValidation: traversal attempts are rejected before any path
// join.
func TestJobIDValidation(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, dir, "a", time.Second)
	for _, id := range []string{"", "../evil", "a/b", `a\b`, "..", "x/../y"} {
		if err := s.Enqueue(id, nil); err == nil {
			t.Errorf("Enqueue(%q) accepted", id)
		}
		if _, _, err := s.Acquire(id); err == nil {
			t.Errorf("Acquire(%q) accepted", id)
		}
	}
}
