package fleet

// Lease protocol. The invariants, in claim order:
//
//  1. A job's lease file is seeded at enqueue time, via O_CREAT|O_EXCL,
//     with a released zero-token placeholder, and is never deleted —
//     release rewrites the content as released. Creating the file never
//     confers ownership (the seed is born released), so the creation race
//     is harmless and every acquisition is decided under the grab.
//  2. Every mutation of an existing lease first grabs it: an atomic
//     rename of the canonical path to a mutator-private grab path. Rename
//     succeeds for exactly one caller, making the grab a cross-process
//     mutex; the file is renamed back when the mutation commits.
//  3. Tokens strictly increase across ownership changes. A takeover
//     issues max(leaseToken, fenceFile)+1 and persists the fence file
//     before the new lease content, so even a lease torn by power loss
//     mid-write cannot cause token reuse.
//  4. A fenced section (WithLease) runs its body while holding the grab
//     with a validated token: a stale owner is turned away with
//     ErrFenced before it can touch shared state, and a successor cannot
//     take over while the body runs because the grab excludes it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"deepthermo/internal/fsx"
)

// grabRetries × grabRetryDelay bounds how long a mutator waits for a
// lease that is mid-grab by another process before reporting ErrLost.
const (
	grabRetries    = 50
	grabRetryDelay = 4 * time.Millisecond
)

// grab atomically renames the job's lease file to a private path,
// excluding every other mutator until ungrab. ErrLost after the retry
// window means the lease is absent or orphaned (see SweepOrphans).
func (s *Store) grab(job string) (string, error) {
	grabPath := fmt.Sprintf("%s.grab-%s-%d", s.leasePath(job), s.replica, s.grabSeq.Add(1))
	for i := 0; i < grabRetries; i++ {
		err := os.Rename(s.leasePath(job), grabPath)
		if err == nil {
			return grabPath, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return "", err
		}
		time.Sleep(grabRetryDelay)
	}
	return "", fmt.Errorf("%w: %q mid-transition for too long", ErrLost, job)
}

// ungrab renames the grabbed lease back to its canonical path.
func (s *Store) ungrab(grabPath, job string) error {
	return os.Rename(grabPath, s.leasePath(job))
}

// readLeaseFile decodes a lease file. A decode failure is reported as
// corrupt (torn write survivor), distinct from an IO failure.
func readLeaseFile(path string) (Lease, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Lease{}, false, err
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil || (l.Token == 0 && !l.Released) {
		return Lease{}, true, nil // corrupt: recover via the fence file
	}
	return l, false, nil
}

// ensureLease seeds the job's lease file with a released zero-token
// placeholder via O_CREAT|O_EXCL. Called only from Enqueue, before the
// job's state record makes it visible to claimers, so it can never race
// a mutator's grab window; losing the creation race against a duplicate
// enqueue (EEXIST) is success.
func (s *Store) ensureLease(job string) error {
	f, err := os.OpenFile(s.leasePath(job), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil
		}
		return err
	}
	encErr := json.NewEncoder(f).Encode(Lease{Job: job, Released: true})
	if encErr == nil {
		encErr = f.Sync()
	}
	if closeErr := f.Close(); encErr == nil {
		encErr = closeErr
	}
	return encErr
}

// writeLeaseTo durably writes lease content to path (an already-grabbed
// file or a brand-new O_EXCL create target is handled by the caller).
// A scheduled TornLease fault writes truncated content non-atomically
// instead, simulating power loss mid-renewal.
func (s *Store) writeLeaseTo(path string, l Lease, seq int64) error {
	if s.plan.TornLeaseAt(s.rank, seq) {
		b, _ := json.Marshal(l)
		return os.WriteFile(path, b[:len(b)/2], 0o644)
	}
	return fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(l)
	})
}

// readFence returns the highest token ever issued for the job, 0 if none.
func (s *Store) readFence(job string) (uint64, error) {
	raw, err := os.ReadFile(s.fencePath(job))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, nil // corrupt fence: lease content is the primary source
	}
	return n, nil
}

// writeFence durably records token as the highest issued for the job.
// Called only by the single process holding the grab (or the single
// O_EXCL creation winner-to-be, whose losing peers compute the same
// value), so concurrent writers always agree on the content.
func (s *Store) writeFence(job string, token uint64) error {
	return fsx.WriteFileAtomic(s.fencePath(job), func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%d\n", token)
		return err
	})
}

// Acquire claims the job's lease for this replica, returning the fencing
// token to present on every subsequent write. The lease is grabbed and,
// if it is released (including the enqueue-time seed), expired, or
// corrupt, reissued to this replica under the next fencing token; an
// active lease held by another replica returns ErrHeld. tookOver
// distinguishes a takeover of an unreleased (expired or torn) lease —
// where a prior owner may have left a checkpoint to resume — from a
// fresh claim of a released one.
func (s *Store) Acquire(job string) (token uint64, tookOver bool, err error) {
	if err := validJobID(job); err != nil {
		return 0, false, err
	}
	if _, statErr := os.Stat(s.leasePath(job)); errors.Is(statErr, os.ErrNotExist) {
		// The lease file is absent. Enqueue seeds it before the state
		// record exists and it is never deleted, so absence means it is
		// mid-mutation or orphaned (awaiting sweep) — report it held and
		// let the claim scan retry — unless the job was never enqueued at
		// all. Creating a file here would fork ownership: a seed landing
		// inside another mutator's grab window is a second claimable
		// lease, so Acquire never creates anything.
		if _, err := os.Stat(s.statePath(job)); errors.Is(err, os.ErrNotExist) {
			return 0, false, fmt.Errorf("%w: %q", ErrNoJob, job)
		}
		return 0, false, ErrHeld
	}
	return s.takeover(job)
}

// takeover grabs the lease and, if it is released, expired, or corrupt,
// reissues it to this replica under the next fencing token.
func (s *Store) takeover(job string) (uint64, bool, error) {
	grabPath, err := s.grab(job)
	if err != nil {
		if errors.Is(err, ErrLost) {
			return 0, false, ErrHeld // mid-transition; retry next scan
		}
		return 0, false, err
	}
	l, corrupt, err := readLeaseFile(grabPath)
	if err != nil {
		s.ungrab(grabPath, job)
		return 0, false, err
	}
	now := time.Now()
	if !corrupt && l.Active(now) && l.Owner != s.replica {
		if err := s.ungrab(grabPath, job); err != nil {
			return 0, false, err
		}
		return 0, false, ErrHeld
	}
	fence, err := s.readFence(job)
	if err != nil {
		s.ungrab(grabPath, job)
		return 0, false, err
	}
	token := fence + 1
	if !corrupt && l.Token >= token {
		token = l.Token + 1
	}
	// Fence first: after this write no earlier token can ever be issued
	// again, even if we die before the lease content lands.
	if err := s.writeFence(job, token); err != nil {
		s.ungrab(grabPath, job)
		return 0, false, err
	}
	nl := Lease{Job: job, Owner: s.replica, Token: token, Expires: now.Add(s.ttl), Renewed: now}
	if err := s.writeLeaseTo(grabPath, nl, -1); err != nil {
		s.ungrab(grabPath, job)
		return 0, false, err
	}
	if err := s.ungrab(grabPath, job); err != nil {
		return 0, false, err
	}
	// An unreleased (expired or torn) predecessor means a prior owner may
	// have died mid-run; a released one is a clean claim.
	tookOver := corrupt || !l.Released
	if tookOver {
		s.takeovers.Add(1)
	} else {
		s.claims.Add(1)
	}
	s.mu.Lock()
	s.held[job] = token
	s.mu.Unlock()
	return token, tookOver, nil
}

// Heartbeat renews this replica's lease on the job. ErrFenced means a
// successor owns the lease now (the caller must stop the run: its writes
// would be rejected anyway); ErrLost means the lease could not be
// grabbed within the retry window. A scheduled LoseHeartbeat fault
// silently skips the renewal — the replica believes it heartbeated, its
// lease quietly expires.
func (s *Store) Heartbeat(job string, token uint64) error {
	seq := s.hbSeq.Add(1)
	if s.plan.HeartbeatLost(s.rank, seq) {
		return nil
	}
	err := s.renew(job, token, seq)
	if err == nil {
		s.heartbeats.Add(1)
		return nil
	}
	s.heartbeatFails.Add(1)
	if errors.Is(err, ErrFenced) {
		s.dropHeld(job)
	}
	return err
}

func (s *Store) renew(job string, token uint64, seq int64) error {
	grabPath, err := s.grab(job)
	if err != nil {
		return err
	}
	l, corrupt, err := readLeaseFile(grabPath)
	if err != nil {
		s.ungrab(grabPath, job)
		return err
	}
	if corrupt {
		// Torn lease content (power loss mid-renewal). The fence file
		// holds the highest issued token: if that is ours, we are still
		// the rightful owner and restore the lease; otherwise a newer
		// token exists and we are fenced.
		fence, ferr := s.readFence(job)
		if ferr != nil {
			s.ungrab(grabPath, job)
			return ferr
		}
		if fence != token {
			s.ungrab(grabPath, job)
			return ErrFenced
		}
	} else if l.Token != token || l.Owner != s.replica {
		s.ungrab(grabPath, job)
		return ErrFenced
	}
	now := time.Now()
	nl := Lease{Job: job, Owner: s.replica, Token: token, Expires: now.Add(s.ttl), Renewed: now}
	if err := s.writeLeaseTo(grabPath, nl, seq); err != nil {
		s.ungrab(grabPath, job)
		return err
	}
	return s.ungrab(grabPath, job)
}

// Release marks this replica's lease released so the job is immediately
// claimable (used when a job reaches a terminal phase, or when a replica
// drains gracefully and wants survivors to resume its work without
// waiting out the TTL). A fenced release is a no-op: the successor owns
// the lease now.
func (s *Store) Release(job string, token uint64) error {
	defer s.dropHeld(job)
	grabPath, err := s.grab(job)
	if err != nil {
		return err
	}
	l, corrupt, err := readLeaseFile(grabPath)
	if err != nil {
		s.ungrab(grabPath, job)
		return err
	}
	if corrupt {
		fence, ferr := s.readFence(job)
		if ferr != nil || fence != token {
			s.ungrab(grabPath, job)
			return ErrFenced
		}
	} else if l.Token != token || l.Owner != s.replica {
		s.ungrab(grabPath, job)
		return ErrFenced
	}
	now := time.Now()
	nl := Lease{Job: job, Owner: s.replica, Token: token, Expires: now, Renewed: now, Released: true}
	if err := s.writeLeaseTo(grabPath, nl, -1); err != nil {
		s.ungrab(grabPath, job)
		return err
	}
	return s.ungrab(grabPath, job)
}

// WithLease runs fn while holding the job's lease grab with a validated
// fencing token: fn's writes to shared state cannot interleave with a
// takeover, and a stale token is rejected with ErrFenced before fn runs.
// This is the commit section fenced artifact and state writes go
// through. A scheduled StaleWrite fault first stalls until the lease has
// expired unrenewed, modelling a paused owner committing late.
func (s *Store) WithLease(job string, token uint64, fn func() error) error {
	if err := validJobID(job); err != nil {
		return err
	}
	seq := s.cmtSeq.Add(1)
	if s.plan.StaleWriteAt(s.rank, seq) {
		s.stallPastExpiry(job)
	}
	grabPath, err := s.grab(job)
	if err != nil {
		return err
	}
	l, corrupt, err := readLeaseFile(grabPath)
	if err != nil {
		s.ungrab(grabPath, job)
		return err
	}
	if corrupt {
		fence, ferr := s.readFence(job)
		if ferr != nil {
			s.ungrab(grabPath, job)
			return ferr
		}
		if fence != token {
			s.fenceRejections.Add(1)
			s.dropHeld(job)
			s.ungrab(grabPath, job)
			return ErrFenced
		}
		// Rightful owner; restore the torn lease while we hold the grab.
		now := time.Now()
		l = Lease{Job: job, Owner: s.replica, Token: token, Expires: now.Add(s.ttl), Renewed: now}
		if err := s.writeLeaseTo(grabPath, l, -1); err != nil {
			s.ungrab(grabPath, job)
			return err
		}
	} else if l.Token != token || l.Owner != s.replica {
		s.fenceRejections.Add(1)
		s.dropHeld(job)
		s.ungrab(grabPath, job)
		return ErrFenced
	}
	fnErr := fn()
	if err := s.ungrab(grabPath, job); err != nil && fnErr == nil {
		fnErr = err
	}
	return fnErr
}

// stallPastExpiry blocks until the job's lease (as observed on disk) has
// expired — chaos support for deterministic stale-owner writes.
func (s *Store) stallPastExpiry(job string) {
	for {
		l, corrupt, err := readLeaseFile(s.leasePath(job))
		if err != nil || corrupt {
			time.Sleep(grabRetryDelay)
			continue
		}
		if l.Owner != s.replica || !l.Active(time.Now()) {
			return
		}
		time.Sleep(time.Until(l.Expires) + grabRetryDelay)
	}
}

// PeekLease reads the job's lease without grabbing it (observability and
// claim scans; the content may be mid-transition). ok is false when no
// lease file exists or it is mid-grab.
func (s *Store) PeekLease(job string) (Lease, bool) {
	l, corrupt, err := readLeaseFile(s.leasePath(job))
	if err != nil || corrupt {
		return Lease{}, false
	}
	return l, true
}

// Claimable reports whether the job looks claimable right now: its lease
// is absent, expired, or released. Advisory — Acquire re-validates under
// the grab.
func (s *Store) Claimable(job string) bool {
	l, corrupt, err := readLeaseFile(s.leasePath(job))
	if err != nil {
		// Absent means mid-grab or orphaned: not claimable until the
		// mutation commits or SweepOrphans restores it.
		return false
	}
	if corrupt {
		// A torn lease is claimable once nothing has renewed it for a
		// TTL; its mtime marks the torn write.
		info, statErr := os.Stat(s.leasePath(job))
		return statErr == nil && time.Since(info.ModTime()) > s.ttl
	}
	return !l.Active(time.Now())
}

// SweepOrphans restores lease files abandoned mid-grab by a crashed
// mutator: any grab file untouched for at least twice the TTL is renamed
// back to its canonical lease path (one racing sweeper wins the rename;
// the rest see ENOENT). Returns how many orphans were restored.
func (s *Store) SweepOrphans() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "leases", "*.grab-*"))
	if err != nil {
		return 0
	}
	restored := 0
	for _, p := range matches {
		info, err := os.Stat(p)
		if err != nil || time.Since(info.ModTime()) < 2*s.ttl {
			continue
		}
		base := filepath.Base(p)
		i := strings.Index(base, ".lease.grab-")
		if i < 0 {
			continue
		}
		canonical := filepath.Join(s.dir, "leases", base[:i]+".lease")
		if _, err := os.Stat(canonical); err == nil {
			// The canonical lease exists (a fresh claim landed while the
			// orphan sat); the orphan is dead history.
			os.Remove(p)
			continue
		}
		if os.Rename(p, canonical) == nil {
			restored++
		}
	}
	return restored
}

func (s *Store) dropHeld(job string) {
	s.mu.Lock()
	delete(s.held, job)
	s.mu.Unlock()
}
