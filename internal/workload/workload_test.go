package workload

import (
	"math"
	"testing"

	"deepthermo/internal/alloy"
	"deepthermo/internal/lattice"
	"deepthermo/internal/rng"
)

func testModel(t testing.TB) *alloy.Model {
	t.Helper()
	return alloy.NbMoTaW(lattice.MustNew(lattice.BCC, 2, 2, 2)) // 16 sites
}

func TestGenerateShapes(t *testing.T) {
	m := testModel(t)
	ds, err := Generate(m, GenOptions{
		Temps:          []float64{500, 2000},
		SamplesPerTemp: 10,
		EquilSweeps:    20,
		GapSweeps:      2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Fatalf("dataset size %d", ds.Len())
	}
	if len(ds.Conds) != 20 || len(ds.Energies) != 20 {
		t.Fatal("parallel arrays out of sync")
	}
}

func TestGenerateCompositionFixed(t *testing.T) {
	m := testModel(t)
	ds, err := Generate(m, GenOptions{
		Temps:          []float64{800},
		SamplesPerTemp: 15,
		EquilSweeps:    10,
		GapSweeps:      1,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range ds.Configs {
		counts := cfg.Counts(4)
		for _, c := range counts {
			if c != 4 {
				t.Fatalf("sample %d composition %v", i, counts)
			}
		}
	}
}

func TestGenerateCondLabels(t *testing.T) {
	m := testModel(t)
	temps := []float64{400, 1600}
	ds, err := Generate(m, GenOptions{Temps: temps, SamplesPerTemp: 5, EquilSweeps: 5, GapSweeps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]bool{CondForT(400): true, CondForT(1600): true}
	for _, c := range ds.Conds {
		if !want[c] {
			t.Fatalf("unexpected condition %g", c)
		}
	}
}

// TestGenerateEnergyOrdering: low-temperature chains must produce lower
// mean energies than high-temperature chains.
func TestGenerateEnergyOrdering(t *testing.T) {
	m := testModel(t)
	ds, err := Generate(m, GenOptions{
		Temps:          []float64{150, 6000},
		SamplesPerTemp: 40,
		EquilSweeps:    200,
		GapSweeps:      5,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lowSum, highSum float64
	var lowN, highN int
	lowCond := CondForT(150)
	for i, c := range ds.Conds {
		if c == lowCond {
			lowSum += ds.Energies[i]
			lowN++
		} else {
			highSum += ds.Energies[i]
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Fatal("missing temperature groups")
	}
	if lowSum/float64(lowN) >= highSum/float64(highN) {
		t.Errorf("low-T mean energy %g not below high-T %g", lowSum/float64(lowN), highSum/float64(highN))
	}
}

func TestGenerateValidation(t *testing.T) {
	m := testModel(t)
	if _, err := Generate(m, GenOptions{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Generate(m, GenOptions{Temps: []float64{300}, SamplesPerTemp: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := Generate(m, GenOptions{Temps: []float64{300}, SamplesPerTemp: 1, Quota: []int{1, 1, 1, 1}}); err == nil {
		t.Error("bad quota accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := testModel(t)
	opts := GenOptions{Temps: []float64{700}, SamplesPerTemp: 8, EquilSweeps: 10, GapSweeps: 1, Seed: 5}
	a, err := Generate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Energies {
		if a.Energies[i] != b.Energies[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
}

func TestDatasetShuffleSplitShard(t *testing.T) {
	ds := &Dataset{}
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	for i := 0; i < 10; i++ {
		cfg := lattice.EquiatomicConfig(lat, 2, rng.New(uint64(i)))
		ds.Append(cfg, float64(i), float64(i)*2)
	}
	train, val := ds.Split(0.8)
	if train.Len() != 8 || val.Len() != 2 {
		t.Fatalf("split %d/%d", train.Len(), val.Len())
	}
	// Shards cover the training set disjointly.
	total := 0
	for i := 0; i < 3; i++ {
		total += train.Shard(i, 3).Len()
	}
	if total != train.Len() {
		t.Errorf("shards cover %d of %d", total, train.Len())
	}
	// Shuffle keeps arrays aligned (cond i ↔ energy 2·cond).
	ds.Shuffle(rng.New(9))
	for i := range ds.Conds {
		if ds.Energies[i] != 2*ds.Conds[i] {
			t.Fatal("shuffle desynced parallel arrays")
		}
	}
}

func TestSplitEdgeCases(t *testing.T) {
	ds := &Dataset{}
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	ds.Append(lattice.EquiatomicConfig(lat, 2, rng.New(1)), 0, 0)
	train, val := ds.Split(0.0)
	if train.Len() != 1 || val.Len() != 0 {
		t.Error("minimum one training sample not enforced")
	}
	train, val = ds.Split(2.0)
	if train.Len() != 1 || val.Len() != 0 {
		t.Error("overlarge fraction not clamped")
	}
}

func TestTempLadder(t *testing.T) {
	ts := TempLadder(100, 1600, 5)
	if len(ts) != 5 {
		t.Fatalf("%d temps", len(ts))
	}
	if math.Abs(ts[0]-100) > 1e-9 || math.Abs(ts[4]-1600) > 1e-9 {
		t.Errorf("endpoints %g, %g", ts[0], ts[4])
	}
	// Geometric: constant ratio 2.
	for i := 1; i < 5; i++ {
		if math.Abs(ts[i]/ts[i-1]-2) > 1e-9 {
			t.Errorf("ratio at %d: %g", i, ts[i]/ts[i-1])
		}
	}
	if one := TempLadder(100, 1600, 1); len(one) != 1 || one[0] != 100 {
		t.Error("n=1 ladder wrong")
	}
}
