// Package workload generates the training data for the DeepThermo proposal
// model. The paper trains its generative model on configurations collected
// from conventional MC runs across a temperature ladder; this package
// reproduces that pipeline with the local-swap baseline sampler, running
// the ladder's temperatures concurrently (they are independent chains).
package workload

import (
	"context"
	"fmt"
	"math"
	"sync"

	"deepthermo/internal/alloy"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rng"
)

// Dataset is a labelled set of configurations for conditional VAE training.
type Dataset struct {
	Configs  []lattice.Config
	Conds    []float64 // conditioning scalar (normalized temperature)
	Energies []float64 // configurational energies (eV), for analysis
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Configs) }

// Append adds a sample.
func (d *Dataset) Append(cfg lattice.Config, cond, energy float64) {
	d.Configs = append(d.Configs, cfg)
	d.Conds = append(d.Conds, cond)
	d.Energies = append(d.Energies, energy)
}

// Shuffle permutes the dataset in place.
func (d *Dataset) Shuffle(src *rng.Source) {
	src.Shuffle(d.Len(), func(i, j int) {
		d.Configs[i], d.Configs[j] = d.Configs[j], d.Configs[i]
		d.Conds[i], d.Conds[j] = d.Conds[j], d.Conds[i]
		d.Energies[i], d.Energies[j] = d.Energies[j], d.Energies[i]
	})
}

// Split divides the dataset into a training and validation set, with frac
// (0,1) of the samples in the training set.
func (d *Dataset) Split(frac float64) (train, val *Dataset) {
	n := int(frac * float64(d.Len()))
	if n < 1 {
		n = 1
	}
	if n > d.Len() {
		n = d.Len()
	}
	train = &Dataset{Configs: d.Configs[:n], Conds: d.Conds[:n], Energies: d.Energies[:n]}
	val = &Dataset{Configs: d.Configs[n:], Conds: d.Conds[n:], Energies: d.Energies[n:]}
	return train, val
}

// Copy returns a Dataset with fresh index slices over the same underlying
// configurations, so reordering the copy (Shuffle) leaves the original
// untouched. Configurations themselves are shared and must be treated as
// immutable.
func (d *Dataset) Copy() *Dataset {
	return &Dataset{
		Configs:  append([]lattice.Config(nil), d.Configs...),
		Conds:    append([]float64(nil), d.Conds...),
		Energies: append([]float64(nil), d.Energies...),
	}
}

// Shard returns the i-th of n contiguous shards (data-parallel workers
// each train on one shard).
func (d *Dataset) Shard(i, n int) *Dataset {
	lo := i * d.Len() / n
	hi := (i + 1) * d.Len() / n
	return &Dataset{Configs: d.Configs[lo:hi], Conds: d.Conds[lo:hi], Energies: d.Energies[lo:hi]}
}

// GenOptions controls training-set generation.
type GenOptions struct {
	Temps          []float64 // temperature ladder (K)
	SamplesPerTemp int       // configurations recorded per temperature
	EquilSweeps    int       // discarded equilibration sweeps (default 200)
	GapSweeps      int       // decorrelation sweeps between samples (default 10)
	Seed           uint64
	Quota          []int // fixed composition; nil = equiatomic
	// EnergyCond labels samples with their normalized energy
	// (mc.CondForEnergy) instead of the normalized temperature, producing
	// the training set for energy-conditioned proposals used inside
	// Wang-Landau sampling.
	EnergyCond bool
}

func (o *GenOptions) setDefaults(m *alloy.Model) {
	if o.EquilSweeps == 0 {
		o.EquilSweeps = 200
	}
	if o.GapSweeps == 0 {
		o.GapSweeps = 10
	}
	if o.Quota == nil {
		n, k := m.Lattice().NumSites(), m.NumSpecies()
		o.Quota = make([]int, k)
		for i := range o.Quota {
			o.Quota[i] = n / k
		}
		o.Quota[k-1] += n - (n/k)*k
	}
}

// CondForT re-exports the conditioning convention so data generation and
// proposal inference cannot drift apart.
func CondForT(t float64) float64 { return mc.CondForT(t) }

// Generate runs one local-swap MC chain per ladder temperature (in
// parallel) and collects decorrelated configurations labelled with their
// normalized temperature.
func Generate(m *alloy.Model, opts GenOptions) (*Dataset, error) {
	return GenerateContext(context.Background(), m, opts)
}

// GenerateContext is Generate with cooperative cancellation. The chains
// poll ctx between sweeps; on cancellation the partial dataset collected so
// far is returned alongside ctx's error.
func GenerateContext(ctx context.Context, m *alloy.Model, opts GenOptions) (*Dataset, error) {
	if len(opts.Temps) == 0 || opts.SamplesPerTemp <= 0 {
		return nil, fmt.Errorf("workload: need temperatures and a positive sample count")
	}
	opts.setDefaults(m)
	total := 0
	for _, q := range opts.Quota {
		total += q
	}
	if total != m.Lattice().NumSites() {
		return nil, fmt.Errorf("workload: quota sums to %d for %d sites", total, m.Lattice().NumSites())
	}

	streams := rng.NewStreams(opts.Seed, len(opts.Temps))
	perTemp := make([]*Dataset, len(opts.Temps))
	done := ctx.Done()
	var wg sync.WaitGroup
	for ti, t := range opts.Temps {
		wg.Add(1)
		go func(ti int, t float64) {
			defer wg.Done()
			src := streams[ti]
			cfg := quotaConfig(m.Lattice().NumSites(), opts.Quota)
			src.Shuffle(len(cfg), func(i, j int) { cfg[i], cfg[j] = cfg[j], cfg[i] })
			s := mc.NewSampler(m, cfg, mc.NewSwapProposal(m), src)
			ds := &Dataset{}
			perTemp[ti] = ds
			for i := 0; i < opts.EquilSweeps; i++ {
				select {
				case <-done:
					return
				default:
				}
				s.Sweep(t)
			}
			cond := CondForT(t)
			for i := 0; i < opts.SamplesPerTemp; i++ {
				for g := 0; g < opts.GapSweeps; g++ {
					s.Sweep(t)
				}
				if opts.EnergyCond {
					cond = mc.CondForEnergy(s.E, len(s.Cfg))
				}
				ds.Append(s.Cfg.Clone(), cond, s.E)
				select {
				case <-done:
					return
				default:
				}
			}
		}(ti, t)
	}
	wg.Wait()

	all := &Dataset{}
	for _, ds := range perTemp {
		all.Configs = append(all.Configs, ds.Configs...)
		all.Conds = append(all.Conds, ds.Conds...)
		all.Energies = append(all.Energies, ds.Energies...)
	}
	all.Shuffle(rng.New(opts.Seed ^ 0xa5a5a5a5))
	if err := ctx.Err(); err != nil {
		return all, err
	}
	return all, nil
}

// quotaConfig returns an unshuffled configuration with the given species
// counts.
func quotaConfig(n int, quota []int) lattice.Config {
	cfg := make(lattice.Config, 0, n)
	for sp, q := range quota {
		for i := 0; i < q; i++ {
			cfg = append(cfg, lattice.Species(sp))
		}
	}
	return cfg
}

// TempLadder returns n temperatures geometrically spaced in [lo, hi], the
// conventional ladder shape (denser at low T where correlation grows).
func TempLadder(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
