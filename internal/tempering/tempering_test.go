package tempering

import (
	"math"
	"testing"

	"deepthermo/internal/alloy"
	"deepthermo/internal/dos"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rng"
	"deepthermo/internal/vae"
)

func smallSystem(t testing.TB) (*alloy.Model, *dos.Exact) {
	t.Helper()
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	m := alloy.BinaryOrdering(lat, 0.05)
	ex, err := dos.EnumerateFixedComposition(m, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	return m, ex
}

func exactMean(x *dos.Exact, tKelvin float64) float64 {
	beta := 1 / (alloy.KB * tKelvin)
	var z, ze float64
	for i, e := range x.E {
		w := x.Count[i] * math.Exp(-beta*(e-x.E[0]))
		z += w
		ze += w * e
	}
	return ze / z
}

// TestMatchesExactEnsemble: every replica must reproduce the exact
// canonical mean energy at its own temperature — the detailed-balance test
// for the combined sweep+exchange kernel.
func TestMatchesExactEnsemble(t *testing.T) {
	m, exact := smallSystem(t)
	temps := []float64{400, 800, 1600, 3200}
	seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(1))
	res, err := Run(m, seed, Options{
		Temps:          temps,
		SweepsPerRound: 20,
		EquilRounds:    100,
		MeasureRounds:  4000,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range res.Replicas {
		want := exactMean(exact, temps[i])
		if math.Abs(rep.Energy.Mean()-want) > 0.012 {
			t.Errorf("T=%g: ⟨E⟩ = %.4f, exact %.4f", temps[i], rep.Energy.Mean(), want)
		}
	}
}

func TestExchangesAccepted(t *testing.T) {
	m, _ := smallSystem(t)
	seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(3))
	res, err := Run(m, seed, Options{
		Temps:         GeometricLadder(500, 4000, 6),
		EquilRounds:   20,
		MeasureRounds: 100,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExchangeTried == 0 {
		t.Fatal("no exchanges attempted")
	}
	// A geometric ladder on a small system exchanges frequently.
	if res.ExchangeRate() < 0.2 {
		t.Errorf("exchange rate %g suspiciously low", res.ExchangeRate())
	}
	if len(res.FinalConfigs) != 6 {
		t.Errorf("%d final configs", len(res.FinalConfigs))
	}
}

// TestEnergyMonotoneInT: mean energy must increase along the ladder.
func TestEnergyMonotoneInT(t *testing.T) {
	m, _ := smallSystem(t)
	seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(5))
	res, err := Run(m, seed, Options{
		Temps:         []float64{300, 1000, 5000},
		EquilRounds:   100,
		MeasureRounds: 800,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Replicas); i++ {
		if res.Replicas[i].Energy.Mean() <= res.Replicas[i-1].Energy.Mean() {
			t.Errorf("⟨E⟩ not increasing: %g then %g",
				res.Replicas[i-1].Energy.Mean(), res.Replicas[i].Energy.Mean())
		}
	}
	// Cv positive everywhere.
	for _, rep := range res.Replicas {
		if rep.Cv <= 0 {
			t.Errorf("T=%g: Cv = %g", rep.T, rep.Cv)
		}
	}
}

func TestValidation(t *testing.T) {
	m, _ := smallSystem(t)
	seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(7))
	if _, err := Run(m, seed, Options{Temps: []float64{500}}); err == nil {
		t.Error("single-temperature ladder accepted")
	}
	if _, err := Run(m, seed, Options{Temps: []float64{500, 400}}); err == nil {
		t.Error("descending ladder accepted")
	}
}

func TestCustomProposalFactory(t *testing.T) {
	m, _ := smallSystem(t)
	vcfg := vae.Config{Sites: 8, Species: 2, Latent: 2, Hidden: 8, BetaKL: 1}
	model, err := vae.New(vcfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(9))
	res, err := Run(m, seed, Options{
		Temps:         []float64{600, 2400},
		EquilRounds:   10,
		MeasureRounds: 50,
		Seed:          10,
		NewProposal: func(replica int, src *rng.Source) mc.Proposal {
			return mc.NewMixture(
				[]mc.Proposal{mc.NewSwapProposal(m), mc.NewGlobalProposal(model.CloneWeights(src), m, []int{4, 4}, 0.5)},
				[]float64{0.8, 0.2},
			)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Replicas {
		if rep.Energy.N() == 0 {
			t.Fatal("no measurements")
		}
	}
}

func TestDeterministic(t *testing.T) {
	m, _ := smallSystem(t)
	run := func() float64 {
		seed := lattice.EquiatomicConfig(m.Lattice(), 2, rng.New(11))
		res, err := Run(m, seed, Options{
			Temps:         []float64{500, 2000},
			EquilRounds:   10,
			MeasureRounds: 50,
			Seed:          12,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Replicas[0].Energy.Mean()
	}
	if run() != run() {
		t.Error("same seed produced different results")
	}
}

func TestGeometricLadder(t *testing.T) {
	l := GeometricLadder(100, 1600, 5)
	if len(l) != 5 || l[0] != 100 || math.Abs(l[4]-1600) > 1e-9 {
		t.Errorf("ladder %v", l)
	}
	for i := 1; i < len(l); i++ {
		if math.Abs(l[i]/l[i-1]-2) > 1e-9 {
			t.Errorf("ratio broken at %d", i)
		}
	}
	if l := GeometricLadder(100, 200, 1); len(l) != 2 {
		t.Error("degenerate ladder not clamped")
	}
}
