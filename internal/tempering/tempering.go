// Package tempering implements parallel tempering (replica exchange in
// temperature), the conventional parallel Monte Carlo method DeepThermo's
// density-of-states approach is an alternative to.
//
// A ladder of canonical replicas runs concurrently, one per temperature;
// neighboring replicas periodically attempt configuration swaps with the
// standard acceptance min{1, exp(Δβ·ΔE)}. Parallel tempering accelerates
// equilibration across free-energy barriers but — unlike Wang-Landau —
// yields observables only at the ladder temperatures, which is precisely
// the contrast the paper draws when it targets g(E) directly. The package
// serves as the comparison baseline and as the equilibrium sampler behind
// high-quality training-set generation.
package tempering

import (
	"fmt"
	"math"
	"sync"

	"deepthermo/internal/alloy"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rng"
	"deepthermo/internal/stats"
)

// Options configures a parallel-tempering run.
type Options struct {
	Temps          []float64 // ladder, ascending (required, ≥2 entries)
	SweepsPerRound int       // sweeps between exchange attempts (default 10)
	EquilRounds    int       // discarded rounds (default 50)
	MeasureRounds  int       // measured rounds (default 200)
	Seed           uint64
	NewProposal    func(replica int, src *rng.Source) mc.Proposal // nil = local swap
}

// ReplicaStat is one temperature's measured observables.
type ReplicaStat struct {
	T          float64
	Energy     stats.Running // per-configuration energy samples
	Acceptance float64       // Metropolis acceptance at this temperature
	// Cv is the fluctuation estimate (⟨E²⟩−⟨E⟩²)/(k_B T²) in eV/K.
	Cv float64
}

// Result is a completed parallel-tempering run.
type Result struct {
	Replicas       []ReplicaStat
	ExchangeTried  int64
	ExchangeAccept int64
	// FinalConfigs are the last configurations, ladder-ordered: input for
	// training-set pipelines.
	FinalConfigs []lattice.Config
}

// ExchangeRate returns the fraction of accepted replica exchanges.
func (r *Result) ExchangeRate() float64 {
	if r.ExchangeTried == 0 {
		return 0
	}
	return float64(r.ExchangeAccept) / float64(r.ExchangeTried)
}

// Run executes parallel tempering on the model starting from clones of
// seedCfg. The sweep phases run concurrently (one goroutine per replica);
// exchanges are coordinated serially between rounds, mirroring the
// bulk-synchronous structure of the REWL driver.
func Run(m *alloy.Model, seedCfg lattice.Config, opts Options) (*Result, error) {
	if len(opts.Temps) < 2 {
		return nil, fmt.Errorf("tempering: need at least 2 temperatures")
	}
	for i := 1; i < len(opts.Temps); i++ {
		if opts.Temps[i] <= opts.Temps[i-1] {
			return nil, fmt.Errorf("tempering: ladder must ascend (%g after %g)", opts.Temps[i], opts.Temps[i-1])
		}
	}
	if opts.SweepsPerRound == 0 {
		opts.SweepsPerRound = 10
	}
	if opts.EquilRounds == 0 {
		opts.EquilRounds = 50
	}
	if opts.MeasureRounds == 0 {
		opts.MeasureRounds = 200
	}

	nRep := len(opts.Temps)
	streams := rng.NewStreams(opts.Seed, nRep+1)
	coord := streams[nRep]

	samplers := make([]*mc.Sampler, nRep)
	for i := range samplers {
		src := streams[i]
		var prop mc.Proposal
		if opts.NewProposal != nil {
			prop = opts.NewProposal(i, src)
		} else {
			prop = mc.NewSwapProposal(m)
		}
		samplers[i] = mc.NewSampler(m, seedCfg.Clone(), prop, src)
	}

	res := &Result{Replicas: make([]ReplicaStat, nRep)}
	for i := range res.Replicas {
		res.Replicas[i].T = opts.Temps[i]
	}

	totalRounds := opts.EquilRounds + opts.MeasureRounds
	for round := 0; round < totalRounds; round++ {
		// Parallel sweep phase.
		var wg sync.WaitGroup
		for i, s := range samplers {
			wg.Add(1)
			go func(i int, s *mc.Sampler) {
				defer wg.Done()
				for k := 0; k < opts.SweepsPerRound; k++ {
					s.Sweep(opts.Temps[i])
				}
			}(i, s)
		}
		wg.Wait()

		// Serial exchange phase, alternating pair parity.
		for i := round % 2; i+1 < nRep; i += 2 {
			res.ExchangeTried++
			if tryExchange(samplers[i], samplers[i+1], opts.Temps[i], opts.Temps[i+1], coord) {
				res.ExchangeAccept++
			}
		}

		if round >= opts.EquilRounds {
			for i, s := range samplers {
				res.Replicas[i].Energy.Add(s.E)
			}
		}
	}

	for i, s := range samplers {
		r := &res.Replicas[i]
		r.Acceptance = s.AcceptanceRate()
		t := opts.Temps[i]
		r.Cv = r.Energy.Variance() / (alloy.KB * t * t)
		res.FinalConfigs = append(res.FinalConfigs, s.Cfg.Clone())
	}
	return res, nil
}

// tryExchange attempts a configuration swap between replicas at ta < tb:
// accept with probability min{1, exp((βa−βb)(Ea−Eb))}.
func tryExchange(a, b *mc.Sampler, ta, tb float64, src *rng.Source) bool {
	betaA := 1 / (alloy.KB * ta)
	betaB := 1 / (alloy.KB * tb)
	logA := (betaA - betaB) * (a.E - b.E)
	if logA < 0 && math.Log(src.Float64()+1e-300) >= logA {
		return false
	}
	a.Cfg, b.Cfg = b.Cfg, a.Cfg
	a.E, b.E = b.E, a.E
	return true
}

// GeometricLadder returns n temperatures geometrically spaced in [lo, hi],
// the standard ladder shape for roughly constant exchange acceptance.
func GeometricLadder(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo, hi}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
