package chaos

import (
	"testing"
	"time"
)

func TestNilPlanIsEmpty(t *testing.T) {
	var p *Plan
	if p.NumCrashes() != 0 || len(p.Faults()) != 0 {
		t.Fatalf("nil plan not empty: %v", p.Faults())
	}
	if p.ShouldCrash(0, 100) {
		t.Fatal("nil plan should never crash")
	}
	if drop, delay := p.SendFault(0, 0); drop || delay != 0 {
		t.Fatal("nil plan should not fault sends")
	}
	if p.SweepDelay(0, 0) != 0 {
		t.Fatal("nil plan should not delay sweeps")
	}
	if p.String() != "no faults" {
		t.Fatalf("nil plan string = %q", p.String())
	}
}

func TestNewPlanQueries(t *testing.T) {
	p := NewPlan(
		Fault{Rank: 2, Step: 50, Kind: Crash},
		Fault{Rank: 2, Step: 30, Kind: Crash}, // earlier crash wins
		Fault{Rank: 1, Step: 7, Kind: DropSend},
		Fault{Rank: 1, Step: 9, Kind: DelaySend, Delay: 5 * time.Millisecond},
		Fault{Rank: 0, Step: 4, Kind: DelaySweep, Delay: time.Millisecond},
	)
	if s, ok := p.CrashStep(2); !ok || s != 30 {
		t.Fatalf("CrashStep(2) = %d, %v; want 30, true", s, ok)
	}
	if p.ShouldCrash(2, 29) {
		t.Fatal("rank 2 crashed before its step")
	}
	if !p.ShouldCrash(2, 30) || !p.ShouldCrash(2, 1000) {
		t.Fatal("rank 2 should stay crashed from step 30 on")
	}
	if drop, _ := p.SendFault(1, 7); !drop {
		t.Fatal("rank 1 send 7 should drop")
	}
	if drop, delay := p.SendFault(1, 9); drop || delay != 5*time.Millisecond {
		t.Fatalf("rank 1 send 9: drop=%v delay=%v", drop, delay)
	}
	if d := p.SweepDelay(0, 4); d != time.Millisecond {
		t.Fatalf("rank 0 sweep 4 delay = %v", d)
	}
	if p.NumCrashes() != 1 {
		t.Fatalf("NumCrashes = %d, want 1", p.NumCrashes())
	}
}

func TestSampleDeterministic(t *testing.T) {
	opts := SampleOptions{Ranks: 64, CrashProb: 0.2, DropProb: 0.3}
	a := Sample(42, opts)
	b := Sample(42, opts)
	fa, fb := a.Faults(), b.Faults()
	if len(fa) != len(fb) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	c := Sample(43, opts)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical plans (vanishingly unlikely)")
	}
	if a.NumCrashes() == 0 {
		t.Fatal("expected some crashes at 20% over 64 ranks")
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	p := Sample(7, SampleOptions{
		Ranks: 200, CrashProb: 1, CrashMinStep: 100, CrashMaxStep: 110,
		DropProb: 1, DropMaxSeq: 5,
	})
	for _, f := range p.Faults() {
		switch f.Kind {
		case Crash:
			if f.Step < 100 || f.Step >= 110 {
				t.Fatalf("crash step %d outside [100,110)", f.Step)
			}
		case DropSend:
			if f.Step < 0 || f.Step >= 5 {
				t.Fatalf("drop seq %d outside [0,5)", f.Step)
			}
		}
	}
	if p.NumCrashes() != 200 {
		t.Fatalf("CrashProb=1 over 200 ranks gave %d crashes", p.NumCrashes())
	}
}
