// Package chaos provides deterministic, seed-driven fault plans for
// exercising the fault-tolerance paths of the parallel samplers (package
// rewl) and the message-passing layer (package comm).
//
// At the scale the DeepThermo paper targets — thousands of GPUs on
// Summit/Crusher — node failures and stragglers are routine, and a
// production REWL deployment must survive them. A Plan is the simulated
// cluster's failure script: which rank fails, at which step, and how.
// Because plans are pure functions of a seed, every chaos experiment and
// fault-injection test replays bit-identically, which is what lets the
// test suite assert exact degraded-mode behavior instead of flaky
// timing-dependent outcomes.
//
// The "step" axis is interpreted by the consumer: package rewl queries
// faults by a walker's own sweep count (scheduling-independent), package
// comm by a rank's operation sequence number.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"deepthermo/internal/rng"
)

// Kind enumerates injectable fault types.
type Kind int

const (
	// Crash permanently fails the rank at the configured step: a rewl
	// walker exits mid-run; a comm rank's later operations error with
	// ErrRankFailed.
	Crash Kind = iota
	// DropSend silently discards the rank's send with the configured
	// sequence number (a lost message).
	DropSend
	// DelaySend stalls the rank's send with the configured sequence number
	// by Delay (network congestion).
	DelaySend
	// DelaySweep stalls the rank before its configured sweep by Delay (a
	// straggler walker, detected by the rewl driver's walker timeout).
	DelaySweep
	// KillRejoin kills the rank at the configured step exactly like Crash,
	// and additionally schedules a replacement to rejoin the world Delay
	// after the kill. The test harness (or smoke script) performs the
	// actual respawn; the plan is the deterministic script for it —
	// queried via ShouldCrash for the kill and RejoinDelay for the respawn.
	KillRejoin
	// LoseHeartbeat silences the rank's lease heartbeats from the
	// configured renewal sequence number onward: the replica keeps running
	// its job but stops renewing its lease, modelling a GC pause, SIGSTOP,
	// or partitioned replica whose lease expires under it. Queried by the
	// fleet lease store via HeartbeatLost.
	LoseHeartbeat
	// StaleWrite delays the rank's fenced commit with the configured
	// sequence number until after its lease TTL has elapsed unrenewed, so
	// the commit arrives from a stale owner and must be rejected by fence
	// validation once a successor holds the lease. Queried via
	// StaleWriteAt.
	StaleWrite
	// TornLease tears the rank's lease renewal with the configured
	// sequence number: the lease file is left with truncated content, as
	// if power was lost mid-write, exercising the corrupt-lease recovery
	// path (fence-file token restoration). Queried via TornLeaseAt.
	TornLease
)

// String returns a short identifier for reports.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case DropSend:
		return "drop-send"
	case DelaySend:
		return "delay-send"
	case DelaySweep:
		return "delay-sweep"
	case KillRejoin:
		return "kill-rejoin"
	case LoseHeartbeat:
		return "lose-heartbeat"
	case StaleWrite:
		return "stale-write"
	case TornLease:
		return "torn-lease"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault schedules one fault: rank Rank experiences Kind at step Step (a
// sweep count for walker faults, an op sequence number for comm faults).
type Fault struct {
	Rank  int
	Step  int64
	Kind  Kind
	Delay time.Duration // DelaySend / DelaySweep only
}

// Plan is an immutable fault schedule, queryable by rank. A nil *Plan is
// the valid empty plan (no faults), so consumers thread it unconditionally.
type Plan struct {
	faults map[int][]Fault // per rank, sorted by step
	crash  map[int]int64   // first crash step per rank
}

// NewPlan builds a plan from an explicit fault list. A rank with several
// Crash entries fails at the earliest.
func NewPlan(faults ...Fault) *Plan {
	p := &Plan{faults: make(map[int][]Fault), crash: make(map[int]int64)}
	for _, f := range faults {
		p.faults[f.Rank] = append(p.faults[f.Rank], f)
		if f.Kind == Crash || f.Kind == KillRejoin {
			if cur, ok := p.crash[f.Rank]; !ok || f.Step < cur {
				p.crash[f.Rank] = f.Step
			}
		}
	}
	for r := range p.faults {
		fs := p.faults[r]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Step < fs[j].Step })
	}
	return p
}

// SampleOptions parameterizes Sample.
type SampleOptions struct {
	// Ranks is the number of ranks (walkers) the plan covers.
	Ranks int
	// CrashProb is each rank's probability of one permanent crash.
	CrashProb float64
	// CrashMinStep/CrashMaxStep bound the uniform crash step,
	// [CrashMinStep, CrashMaxStep). Defaults [0, 1000).
	CrashMinStep, CrashMaxStep int64
	// DropProb is each rank's probability of one dropped send, with the
	// sequence number uniform in [0, DropMaxSeq) (default 100).
	DropProb   float64
	DropMaxSeq int64
}

// Sample draws a deterministic plan from seed: every rank independently
// receives faults with the configured probabilities. The same seed and
// options always produce the same plan.
func Sample(seed uint64, opts SampleOptions) *Plan {
	if opts.CrashMaxStep <= opts.CrashMinStep {
		opts.CrashMinStep, opts.CrashMaxStep = 0, 1000
	}
	if opts.DropMaxSeq <= 0 {
		opts.DropMaxSeq = 100
	}
	src := rng.New(seed)
	var faults []Fault
	for r := 0; r < opts.Ranks; r++ {
		if src.Float64() < opts.CrashProb {
			step := opts.CrashMinStep + int64(src.Intn(int(opts.CrashMaxStep-opts.CrashMinStep)))
			faults = append(faults, Fault{Rank: r, Step: step, Kind: Crash})
		}
		if src.Float64() < opts.DropProb {
			faults = append(faults, Fault{Rank: r, Step: int64(src.Intn(int(opts.DropMaxSeq))), Kind: DropSend})
		}
	}
	return NewPlan(faults...)
}

// Faults returns the schedule sorted by (rank, step), for reports.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, fs := range p.faults {
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Step < out[j].Step
	})
	return out
}

// NumCrashes counts ranks scheduled to crash.
func (p *Plan) NumCrashes() int {
	if p == nil {
		return 0
	}
	return len(p.crash)
}

// CrashStep returns the step at which rank permanently fails.
func (p *Plan) CrashStep(rank int) (int64, bool) {
	if p == nil {
		return 0, false
	}
	s, ok := p.crash[rank]
	return s, ok
}

// ShouldCrash reports whether rank has reached its crash step.
func (p *Plan) ShouldCrash(rank int, step int64) bool {
	s, ok := p.CrashStep(rank)
	return ok && step >= s
}

// SendFault returns the drop/delay verdict for rank's seq-th send.
func (p *Plan) SendFault(rank int, seq int64) (drop bool, delay time.Duration) {
	if p == nil {
		return false, 0
	}
	for _, f := range p.faults[rank] {
		if f.Step != seq {
			continue
		}
		switch f.Kind {
		case DropSend:
			drop = true
		case DelaySend:
			delay += f.Delay
		}
	}
	return drop, delay
}

// RejoinDelay reports whether rank is scheduled for kill-then-rejoin,
// and if so how long after the kill its replacement should be spawned.
// A rank with several KillRejoin entries rejoins after the earliest one.
func (p *Plan) RejoinDelay(rank int) (time.Duration, bool) {
	if p == nil {
		return 0, false
	}
	for _, f := range p.faults[rank] {
		if f.Kind == KillRejoin {
			return f.Delay, true
		}
	}
	return 0, false
}

// NumRejoins counts ranks scheduled for kill-then-rejoin.
func (p *Plan) NumRejoins() int {
	if p == nil {
		return 0
	}
	n := 0
	for r := range p.faults {
		if _, ok := p.RejoinDelay(r); ok {
			n++
		}
	}
	return n
}

// HeartbeatLost reports whether rank's seq-th lease heartbeat is
// suppressed. A LoseHeartbeat fault at step S silences every renewal from
// S onward — the replica is "paused", not flaky — so once a rank loses
// its heartbeat it stays lost.
func (p *Plan) HeartbeatLost(rank int, seq int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults[rank] {
		if f.Kind == LoseHeartbeat && seq >= f.Step {
			return true
		}
	}
	return false
}

// StaleWriteAt reports whether rank's seq-th fenced commit is scheduled
// to be delayed past its lease expiry (a stale-owner write).
func (p *Plan) StaleWriteAt(rank int, seq int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults[rank] {
		if f.Kind == StaleWrite && f.Step == seq {
			return true
		}
	}
	return false
}

// TornLeaseAt reports whether rank's seq-th lease renewal is scheduled to
// be torn mid-write.
func (p *Plan) TornLeaseAt(rank int, seq int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults[rank] {
		if f.Kind == TornLease && f.Step == seq {
			return true
		}
	}
	return false
}

// SweepDelay returns the injected stall before rank's sweep-th sweep.
func (p *Plan) SweepDelay(rank int, sweep int64) time.Duration {
	if p == nil {
		return 0
	}
	var d time.Duration
	for _, f := range p.faults[rank] {
		if f.Kind == DelaySweep && f.Step == sweep {
			d += f.Delay
		}
	}
	return d
}

// String renders a compact description ("rank 3: crash@120, rank 5:
// drop-send@17"), or "no faults".
func (p *Plan) String() string {
	fs := p.Faults()
	if len(fs) == 0 {
		return "no faults"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmt.Sprintf("rank %d: %s@%d", f.Rank, f.Kind, f.Step)
	}
	return strings.Join(parts, ", ")
}
