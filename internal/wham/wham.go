// Package wham implements the weighted histogram analysis method: the
// maximum-likelihood estimate of the density of states from canonical
// energy histograms collected at several temperatures (e.g. by parallel
// tempering).
//
// WHAM is the classical route to g(E) that DeepThermo's direct
// flat-histogram sampling replaces: it only resolves g where some ladder
// temperature puts weight, whereas Wang-Landau covers the window by
// construction. Implementing both makes the trade-off measurable and
// gives the test suite a third independent estimator of the same
// thermodynamics (alongside exact enumeration and REWL).
//
// The self-consistent equations, solved in log domain:
//
//	ln g(E) = ln Σ_i H_i(E) − lse_i[ ln N_i + f_i − β_i E ]
//	f_i     = −lse_E[ ln g(E) − β_i E ]
//
// where H_i is run i's energy histogram, N_i its sample count, and lse is
// log-sum-exp.
package wham

import (
	"fmt"
	"math"

	"deepthermo/internal/alloy"
	"deepthermo/internal/dos"
)

// Run is one canonical run's input: its temperature and its energy
// histogram over the common bin grid.
type Run struct {
	T      float64 // kelvin
	Counts []int64 // histogram over the shared energy bins
}

// Options controls the self-consistent iteration.
type Options struct {
	MaxIter int     // default 10000
	Tol     float64 // max |Δf| convergence threshold in nats (default 1e-10)
}

// Result is a converged WHAM solution.
type Result struct {
	DOS        *dos.LogDOS
	FreeEnergy []float64 // f_i = −ln Z_i (up to the common gauge), per run
	Iterations int
	Converged  bool
}

// Solve estimates ln g(E) from histograms on the bin grid defined by eMin
// and binWidth. At least one run and one populated bin are required.
func Solve(eMin, binWidth float64, bins int, runs []Run, opts Options) (*Result, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("wham: no runs")
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 10000
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-10
	}
	d, err := dos.New(eMin, eMin+binWidth*float64(bins), bins)
	if err != nil {
		return nil, err
	}

	// Precompute per-run totals and the pooled histogram.
	nRuns := len(runs)
	logN := make([]float64, nRuns)
	beta := make([]float64, nRuns)
	for i, r := range runs {
		if len(r.Counts) != bins {
			return nil, fmt.Errorf("wham: run %d has %d bins, want %d", i, len(r.Counts), bins)
		}
		if r.T <= 0 {
			return nil, fmt.Errorf("wham: run %d has non-positive temperature", i)
		}
		var total int64
		for _, c := range r.Counts {
			if c < 0 {
				return nil, fmt.Errorf("wham: negative count in run %d", i)
			}
			total += c
		}
		if total == 0 {
			return nil, fmt.Errorf("wham: run %d has an empty histogram", i)
		}
		logN[i] = math.Log(float64(total))
		beta[i] = 1 / (alloy.KB * r.T)
	}
	logPooled := make([]float64, bins)
	anyBin := false
	for b := 0; b < bins; b++ {
		var pooled int64
		for _, r := range runs {
			pooled += r.Counts[b]
		}
		if pooled > 0 {
			logPooled[b] = math.Log(float64(pooled))
			anyBin = true
		} else {
			logPooled[b] = math.Inf(-1)
		}
	}
	if !anyBin {
		return nil, fmt.Errorf("wham: all histograms empty")
	}

	f := make([]float64, nRuns) // −ln Z_i, gauge-fixed to f[0] = 0
	fNew := make([]float64, nRuns)
	res := &Result{}
	den := make([]float64, nRuns)
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		// ln g from the current f.
		for b := 0; b < bins; b++ {
			if math.IsInf(logPooled[b], -1) {
				d.LogG[b] = math.Inf(-1)
				continue
			}
			e := d.BinEnergy(b)
			for i := range runs {
				den[i] = logN[i] + f[i] - beta[i]*e
			}
			d.LogG[b] = logPooled[b] - dos.LogSumExp(den)
		}
		// f from the current ln g.
		maxDelta := 0.0
		for i := range runs {
			var lse float64 = math.Inf(-1)
			for b := 0; b < bins; b++ {
				if math.IsInf(d.LogG[b], -1) {
					continue
				}
				v := d.LogG[b] - beta[i]*d.BinEnergy(b)
				if math.IsInf(lse, -1) {
					lse = v
				} else if v > lse {
					lse = v + math.Log1p(math.Exp(lse-v))
				} else {
					lse = lse + math.Log1p(math.Exp(v-lse))
				}
			}
			fNew[i] = -lse
		}
		// Gauge: fix f[0] = 0 so the iteration cannot drift.
		f0 := fNew[0]
		for i := range fNew {
			fNew[i] -= f0
			if delta := math.Abs(fNew[i] - f[i]); delta > maxDelta {
				maxDelta = delta
			}
			f[i] = fNew[i]
		}
		if maxDelta < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.DOS = d
	res.FreeEnergy = f
	return res, nil
}

// HistogramEnergies bins a run's energy samples onto the common grid,
// returning the counts (samples outside the grid are dropped and counted
// in the second return).
func HistogramEnergies(eMin, binWidth float64, bins int, energies []float64) (counts []int64, dropped int) {
	counts = make([]int64, bins)
	for _, e := range energies {
		if e < eMin { // int() truncates toward zero, so guard explicitly
			dropped++
			continue
		}
		b := int((e - eMin) / binWidth)
		if b >= bins {
			dropped++
			continue
		}
		counts[b]++
	}
	return counts, dropped
}
