package wham

import (
	"math"
	"testing"

	"deepthermo/internal/alloy"
	"deepthermo/internal/dos"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rng"
	"deepthermo/internal/tempering"
)

// collect runs canonical MC at each temperature and histograms energies.
func collect(t *testing.T, m *alloy.Model, temps []float64, eMin, binW float64, bins, samples int) []Run {
	t.Helper()
	runs := make([]Run, len(temps))
	for i, tk := range temps {
		src := rng.New(uint64(100 + i))
		cfg := lattice.EquiatomicConfig(m.Lattice(), 2, src)
		s := mc.NewSampler(m, cfg, mc.NewSwapProposal(m), src)
		for k := 0; k < 400; k++ {
			s.Sweep(tk)
		}
		energies := make([]float64, 0, samples)
		for k := 0; k < samples; k++ {
			for g := 0; g < 3; g++ {
				s.Sweep(tk)
			}
			energies = append(energies, s.E)
		}
		counts, _ := HistogramEnergies(eMin, binW, bins, energies)
		runs[i] = Run{T: tk, Counts: counts}
	}
	return runs
}

// TestWHAMMatchesExactDOS: WHAM from canonical histograms must reproduce
// the exactly enumerated ln g over the well-sampled bins.
func TestWHAMMatchesExactDOS(t *testing.T) {
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	m := alloy.BinaryOrdering(lat, 0.05)
	exact, err := dos.EnumerateFixedComposition(m, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	exDOS, err := exact.ToLogDOS(0.025)
	if err != nil {
		t.Fatal(err)
	}
	temps := tempering.GeometricLadder(300, 6000, 8)
	runs := collect(t, m, temps, exDOS.EMin, exDOS.BinWidth, exDOS.Bins(), 8000)
	res, err := Solve(exDOS.EMin, exDOS.BinWidth, exDOS.Bins(), runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("WHAM did not converge")
	}
	rms, n, err := dos.RMSLogError(res.DOS, exDOS)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("only %d bins compared", n)
	}
	if rms > 0.1 {
		t.Errorf("WHAM RMS ln g error %g over %d bins", rms, n)
	}
}

// TestWHAMFreeEnergiesMatchExact: the converged f_i = −ln Z_i (gauge
// f_0 = 0) must reproduce the exact partition-function ratios of the
// enumerated spectrum: f_i − f_0 = ln Z_0 − ln Z_i.
func TestWHAMFreeEnergiesMatchExact(t *testing.T) {
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	m := alloy.BinaryOrdering(lat, 0.05)
	exact, err := dos.EnumerateFixedComposition(m, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	exDOS, err := exact.ToLogDOS(0.025)
	if err != nil {
		t.Fatal(err)
	}
	temps := []float64{400, 1000, 3000}
	runs := collect(t, m, temps, exDOS.EMin, exDOS.BinWidth, exDOS.Bins(), 8000)
	res, err := Solve(exDOS.EMin, exDOS.BinWidth, exDOS.Bins(), runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FreeEnergy[0] != 0 {
		t.Errorf("gauge not fixed: f[0] = %g", res.FreeEnergy[0])
	}
	// Exact ln Z at each temperature from the binned exact DOS (the same
	// discretization WHAM works on).
	lnZ := func(tk float64) float64 {
		beta := 1 / (alloy.KB * tk)
		terms := make([]float64, 0, exDOS.Bins())
		for b := 0; b < exDOS.Bins(); b++ {
			if !exDOS.Visited(b) {
				continue
			}
			terms = append(terms, exDOS.LogG[b]-beta*exDOS.BinEnergy(b))
		}
		return dos.LogSumExp(terms)
	}
	z0 := lnZ(temps[0])
	for i, tk := range temps {
		want := z0 - lnZ(tk)
		if math.Abs(res.FreeEnergy[i]-want) > 0.05 {
			t.Errorf("T=%g: f = %g, exact %g", tk, res.FreeEnergy[i], want)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(0, 0.1, 4, nil, Options{}); err == nil {
		t.Error("no runs accepted")
	}
	if _, err := Solve(0, 0.1, 4, []Run{{T: 300, Counts: []int64{1}}}, Options{}); err == nil {
		t.Error("wrong bin count accepted")
	}
	if _, err := Solve(0, 0.1, 4, []Run{{T: -1, Counts: make([]int64, 4)}}, Options{}); err == nil {
		t.Error("negative temperature accepted")
	}
	if _, err := Solve(0, 0.1, 4, []Run{{T: 300, Counts: make([]int64, 4)}}, Options{}); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := Solve(0, 0.1, 4, []Run{{T: 300, Counts: []int64{1, -2, 0, 0}}}, Options{}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestHistogramEnergies(t *testing.T) {
	counts, dropped := HistogramEnergies(0, 0.5, 4, []float64{0.1, 0.6, 1.9, -0.2, 2.5})
	if counts[0] != 1 || counts[1] != 1 || counts[3] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if dropped != 2 {
		t.Errorf("dropped = %d", dropped)
	}
}

// TestWHAMSingleRun: one histogram at one temperature still yields a DOS
// (the reweighted histogram itself).
func TestWHAMSingleRun(t *testing.T) {
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	m := alloy.BinaryOrdering(lat, 0.05)
	runs := collect(t, m, []float64{2000}, -1.25, 0.025, 40, 3000)
	res, err := Solve(-1.25, 0.025, 40, runs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("single-run WHAM should converge immediately")
	}
	lo, hi, ok := res.DOS.VisitedRange()
	if !ok || hi <= lo {
		t.Error("empty single-run DOS")
	}
	// ln g must not be NaN anywhere.
	for _, lg := range res.DOS.LogG {
		if math.IsNaN(lg) {
			t.Fatal("NaN in DOS")
		}
	}
}
