package infer

import (
	"math"
	"sync"
	"testing"
	"time"

	"deepthermo/internal/lattice"
	"deepthermo/internal/rng"
	"deepthermo/internal/vae"
)

func testModel(tb testing.TB, seed uint64) *vae.Model {
	tb.Helper()
	m, err := vae.New(vae.Config{Sites: 8, Species: 3, Latent: 4, Hidden: 16, BetaKL: 1}, rng.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func randomCfg(n, k int, src *rng.Source) lattice.Config {
	cfg := make(lattice.Config, n)
	for i := range cfg {
		cfg[i] = lattice.Species(src.Intn(k))
	}
	return cfg
}

// TestPassThroughOutsideBracket: calls without BeginBatch run batch-1 and
// match a reference model bit-for-bit, and count as pass-throughs.
func TestPassThroughOutsideBracket(t *testing.T) {
	eng := NewEngine(testModel(t, 11))
	ref := testModel(t, 11)
	c := eng.NewClient()
	src := rng.New(12)
	vc := c.Config()

	for i := 0; i < 5; i++ {
		cfg := randomCfg(vc.Sites, vc.Species, src)
		cond := src.Float64()
		mu, lv := c.EncodeInto(cfg, cond, nil, nil)
		wantMu, wantLv := ref.EncodeInto(cfg, cond, nil, nil)
		for j := range mu {
			if math.Float64bits(mu[j]) != math.Float64bits(wantMu[j]) ||
				math.Float64bits(lv[j]) != math.Float64bits(wantLv[j]) {
				t.Fatalf("pass-through encode %d diverged", i)
			}
		}
	}
	st := eng.Stats()
	if st.PassThrough != 5 || st.Batches != 0 {
		t.Fatalf("stats = %+v, want 5 pass-throughs and no batches", st)
	}
}

// TestQuorumFlushCoalesces: W bracketed clients each submitting one request
// are served in one flush, with results bit-identical to the reference.
func TestQuorumFlushCoalesces(t *testing.T) {
	const w = 6
	eng := NewEngine(testModel(t, 21))
	ref := testModel(t, 21)
	vc := eng.Model().Config()
	src := rng.New(22)

	cfgs := make([]lattice.Config, w)
	conds := make([]float64, w)
	for i := range cfgs {
		cfgs[i] = randomCfg(vc.Sites, vc.Species, src)
		conds[i] = src.Float64()
	}
	mus := make([][]float64, w)
	lvs := make([][]float64, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		// Join the quorum before spawning (the REWL sweep-phase pattern) so
		// no client can flush solo before its siblings are scheduled.
		c := eng.NewClient()
		c.BeginBatch()
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			defer c.EndBatch()
			mus[i], lvs[i] = c.EncodeInto(cfgs[i], conds[i], nil, nil)
		}(i, c)
	}
	wg.Wait()
	for i := 0; i < w; i++ {
		wantMu, wantLv := ref.EncodeInto(cfgs[i], conds[i], nil, nil)
		for j := range mus[i] {
			if math.Float64bits(mus[i][j]) != math.Float64bits(wantMu[j]) ||
				math.Float64bits(lvs[i][j]) != math.Float64bits(wantLv[j]) {
				t.Fatalf("client %d result diverged from reference", i)
			}
		}
	}
	st := eng.Stats()
	if st.Requests != w {
		t.Fatalf("served %d requests, want %d", st.Requests, w)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("no coalescing happened: max batch %d", st.MaxBatch)
	}
}

// TestEndBatchReleasesQuorum: a client that leaves without submitting must
// not strand the remaining blocked clients (the EndBatch-triggered flush).
func TestEndBatchReleasesQuorum(t *testing.T) {
	eng := NewEngine(testModel(t, 31))
	vc := eng.Model().Config()
	src := rng.New(32)
	cfg := randomCfg(vc.Sites, vc.Species, src)

	blocker := eng.NewClient()
	leaver := eng.NewClient()
	blocker.BeginBatch()
	leaver.BeginBatch()

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer blocker.EndBatch()
		blocker.EncodeInto(cfg, 0.5, nil, nil) // parks: quorum is 2, only 1 blocked
	}()
	time.Sleep(20 * time.Millisecond) // let the blocker park
	leaver.EndBatch()                 // quorum shrinks to 1 ⇒ flush fires
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked client was stranded after the other left the quorum")
	}
}

// TestRepeatedRoundsQuorumAccounting drives many rounds of mixed
// encode/decode traffic and checks the blocked-counter accounting never
// lets a fast client trigger premature solo flushes: with W clients each
// submitting R requests per round, every flush while all W are active must
// carry at least 1 request and the engine must serve exactly W·R·rounds.
func TestRepeatedRoundsQuorumAccounting(t *testing.T) {
	const w, reqs, rounds = 4, 6, 10
	eng := NewEngine(testModel(t, 41))
	vc := eng.Model().Config()
	clients := make([]*Client, w)
	for i := range clients {
		clients[i] = eng.NewClient()
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i, c := range clients {
			c.BeginBatch()
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				src := rng.New(uint64(1000*round + i))
				defer c.EndBatch()
				z := make([]float64, vc.Latent)
				probs := vae.NewProbs(vc.Sites, vc.Species)
				for r := 0; r < reqs; r++ {
					if r%2 == 0 {
						c.EncodeInto(randomCfg(vc.Sites, vc.Species, src), src.Float64(), nil, nil)
					} else {
						for j := range z {
							z[j] = src.NormFloat64()
						}
						c.DecodeProbsInto(z, src.Float64(), probs)
					}
				}
			}(i, c)
		}
		wg.Wait()
	}
	st := eng.Stats()
	if want := int64(w * reqs * rounds); st.Requests != want {
		t.Fatalf("served %d requests, want %d", st.Requests, want)
	}
	if st.Encodes+st.Decodes != st.Requests {
		t.Fatalf("phase counts %d+%d != total %d", st.Encodes, st.Decodes, st.Requests)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("no coalescing across %d clients: max batch %d", w, st.MaxBatch)
	}
	// The quorum protocol admits flushes below full width only when clients
	// are mid-End; with all clients issuing identical request counts the
	// average batch must comfortably exceed 1 (premature tiny flushes from
	// stale counters would drag it toward 1).
	if avg := float64(st.Requests) / float64(st.Batches); avg < 1.5 {
		t.Fatalf("average flush width %.2f suggests stale-quorum tiny batches", avg)
	}
}

// TestFlushPanicSettlesQuorum: a malformed request that panics the batched
// kernel must propagate to the submitting client but still wake the other
// parked clients (the deferred queue settle), not deadlock the engine.
func TestFlushPanicSettlesQuorum(t *testing.T) {
	eng := NewEngine(testModel(t, 51))
	vc := eng.Model().Config()
	src := rng.New(52)
	good := eng.NewClient()
	bad := eng.NewClient()
	good.BeginBatch()
	bad.BeginBatch()

	goodDone := make(chan struct{})
	go func() {
		defer close(goodDone)
		defer good.EndBatch()
		good.EncodeInto(randomCfg(vc.Sites, vc.Species, src), 0.1, nil, nil)
	}()
	time.Sleep(20 * time.Millisecond)

	panicked := make(chan any, 1)
	go func() {
		defer bad.EndBatch()
		defer func() { panicked <- recover() }()
		bad.DecodeProbsInto(make([]float64, vc.Latent+3), 0.2, nil) // wrong latent size
	}()
	select {
	case r := <-panicked:
		if r == nil {
			t.Fatal("malformed request did not panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panicking client never returned")
	}
	select {
	case <-goodDone:
	case <-time.After(5 * time.Second):
		t.Fatal("well-formed client stranded after sibling's kernel panic")
	}
}
