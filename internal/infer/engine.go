// Package infer implements the batched cross-walker inference engine: it
// coalesces the per-walker encoder/decoder requests of many concurrent MC
// walkers into batch-major forwards on one shared set of model weights.
//
// Motivation. PR 5 made a single walker's DL proposal allocation-free, but
// every walker still paid its own full NN forward on its own ~1 MB weight
// clone — W walkers stream W copies of the same weights through the cache
// per sweep. The engine keeps ONE weight copy hot and amortizes each layer
// traversal across every walker that has a request in flight, which is the
// paper's central batching win (model evaluation, not MC bookkeeping,
// dominates time-to-solution at scale).
//
// Protocol. Each walker owns a Client. Around a region in which it will
// issue requests (a sweep round), it brackets BeginBatch/EndBatch. Inside
// the bracket, EncodeInto/DecodeProbsInto enqueue the request and block;
// when every active client is blocked on a request (a full quorum) the last
// arrival executes the whole queue inline: one batched encoder forward for
// the encode group and one batched decoder forward for the decode group,
// then wakes everyone. Walkers at different phases of their step thus
// naturally pipeline — one flush can carry walker A's encode next to walker
// B's reverse-density decode. Outside a bracket, calls pass through as
// batch-1 forwards under the engine lock, so prepare/warm-up code needs no
// special casing.
//
// Identity. Batched results are bit-identical to the sequential path:
// every kernel on the inference path is row-independent (see
// vae.EncodeBatchInto), so membership and order of a flush group cannot
// affect any request's result. The batch golden-trace tests in internal/mc
// and the REWL parity test pin this end to end.
//
// Liveness. A flush fires whenever blocked == active with a non-empty
// queue. Clients leave the quorum via EndBatch (which also flushes if the
// remaining active clients are all blocked) — so walkers that stop issuing
// requests (swap-only sweeps, finished windows, crashed walkers via a
// deferred EndBatch) cannot starve the rest.
package infer

import (
	"sync"

	"deepthermo/internal/lattice"
	"deepthermo/internal/tensor"
	"deepthermo/internal/vae"
)

// reqKind discriminates the batched phases. A fused request rides both:
// its encode row and (after the engine reparameterizes z from the client's
// pre-drawn normals) its decode row.
type reqKind uint8

const (
	reqEncode reqKind = iota
	reqDecode
	reqFused
)

// request is one queued inference call. Each Client owns exactly one,
// reused across calls, so enqueueing allocates nothing in steady state.
type request struct {
	kind reqKind
	cond float64
	// encode
	cfg        lattice.Config
	mu, logvar []float64
	// decode
	z     []float64
	probs [][]float64
	// fused (encode + reparameterize + decode in one round-trip)
	eps  []float64
	done bool
}

// Stats counts engine activity. Read with Engine.Stats after a run.
type Stats struct {
	Batches     int64 // flushes executed
	Requests    int64 // total requests served through flushes
	Encodes     int64 // encode rows among them (incl. fused)
	Decodes     int64 // decode rows among them (incl. fused)
	Fused       int64 // fused walk-step requests among them
	MaxBatch    int   // largest single flush (encode + decode rows)
	PassThrough int64 // batch-1 calls outside a Begin/End bracket
}

// Engine owns one model replica and coalesces client requests into batched
// forwards. Construct with NewEngine, then hand each walker a NewClient.
type Engine struct {
	mu    sync.Mutex
	cv    *sync.Cond
	model *vae.Model

	active  int // clients inside a BeginBatch/EndBatch bracket
	blocked int // active clients currently parked on a queued request
	queue   []*request

	// Flush scratch: argument slices of views into client-owned buffers,
	// reused across flushes.
	encCfgs  []lattice.Config
	encConds []float64
	encMu    [][]float64
	encLv    [][]float64
	decZs    [][]float64
	decConds []float64
	decProbs [][][]float64
	encReqs  []*request
	decReqs  []*request

	stats Stats
}

// NewEngine wraps model in a batching engine. The engine owns the model:
// nothing else may run inference on it concurrently (all access — batched
// or pass-through — happens under the engine lock).
func NewEngine(model *vae.Model) *Engine {
	e := &Engine{model: model}
	e.cv = sync.NewCond(&e.mu)
	return e
}

// Model returns the engine-owned model. Callers must not run inference on
// it while clients are live; it exists for weight updates between runs
// (retrains), after which each client's proposal cache must be invalidated.
func (e *Engine) Model() *vae.Model { return e.model }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Client is one walker's handle on the engine. It implements the proposal
// backend interface (mc.Inferencer) plus the quorum hooks
// (mc.BatchParticipant). A Client is owned by a single goroutine; distinct
// Clients may be used concurrently.
type Client struct {
	eng     *Engine
	inBatch bool
	req     request
}

// NewClient returns a new handle for one walker.
func (e *Engine) NewClient() *Client { return &Client{eng: e} }

// Config returns the model hyperparameters.
func (c *Client) Config() vae.Config { return c.eng.model.Config() }

// BeginBatch joins the flush quorum: until EndBatch, this client's requests
// are queued and coalesced with every other active client's.
func (c *Client) BeginBatch() {
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if !c.inBatch {
		c.inBatch = true
		e.active++
	}
}

// EndBatch leaves the quorum. If the remaining active clients are all
// already parked on requests, their batch is flushed now rather than
// waiting for a quorum this client can no longer join. Safe to call
// without a matching BeginBatch (it is a no-op), so it can run in a defer
// alongside panic recovery.
func (c *Client) EndBatch() {
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.inBatch {
		c.inBatch = false
		e.active--
		if len(e.queue) > 0 && e.blocked >= e.active {
			e.flushLocked()
		}
	}
}

// EncodeInto implements the encoder half of the backend interface: inside a
// bracket it enqueues and blocks until the quorum flush computes it; outside
// it runs batch-1 under the engine lock. mu and logvar must be
// caller-allocated with length Latent (the proposal hot path always passes
// its arena buffers, so the nil-allocating convenience of vae.Model is
// deliberately not replicated here).
func (c *Client) EncodeInto(cfg lattice.Config, cond float64, mu, logvar []float64) ([]float64, []float64) {
	if mu == nil || logvar == nil {
		l := c.eng.model.Config().Latent
		if mu == nil {
			mu = make([]float64, l)
		}
		if logvar == nil {
			logvar = make([]float64, l)
		}
	}
	c.req.kind = reqEncode
	c.req.cfg = cfg
	c.req.cond = cond
	c.req.mu, c.req.logvar = mu, logvar
	c.submit()
	return mu, logvar
}

// DecodeProbsInto implements the decoder half of the backend interface;
// the same queueing rules as EncodeInto apply. dst must be caller-allocated
// (vae.NewProbs-shaped) — the hot path always reuses its arena table.
func (c *Client) DecodeProbsInto(z []float64, cond float64, dst [][]float64) [][]float64 {
	if dst == nil {
		cfg := c.eng.model.Config()
		dst = vae.NewProbs(cfg.Sites, cfg.Species)
	}
	c.req.kind = reqDecode
	c.req.z = z
	c.req.cond = cond
	c.req.probs = dst
	c.submit()
	return dst
}

// EncodeSampleDecode implements mc.FusedInferencer: the full walk-posterior
// forward as ONE engine round-trip. All buffers are caller-allocated (the
// proposal's arenas); eps holds the pre-drawn standard normals, and the
// engine computes z with vae.SampleLatent between the batched encode and
// decode phases of the same flush, so the result is bit-identical to an
// EncodeInto + SampleLatent + DecodeProbsInto sequence.
func (c *Client) EncodeSampleDecode(cfg lattice.Config, cond float64, eps, mu, lv, z []float64, probs [][]float64) {
	c.req.kind = reqFused
	c.req.cfg = cfg
	c.req.cond = cond
	c.req.eps = eps
	c.req.mu, c.req.logvar = mu, lv
	c.req.z = z
	c.req.probs = probs
	c.submit()
}

// submit routes the prepared c.req: pass-through outside a bracket,
// enqueue-and-park inside one. The caller holds no locks.
func (c *Client) submit() {
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if !c.inBatch {
		e.runOneLocked(&c.req)
		e.stats.PassThrough++
		return
	}
	c.req.done = false
	e.queue = append(e.queue, &c.req)
	e.blocked++
	if e.blocked >= e.active {
		// Quorum complete: this client is the last arrival and executes the
		// whole batch inline while the others are parked on the condvar.
		e.flushLocked()
	}
	for !c.req.done {
		e.cv.Wait()
	}
}

// runOneLocked executes a single request batch-1 on the engine model.
func (e *Engine) runOneLocked(r *request) {
	switch r.kind {
	case reqEncode:
		e.model.EncodeInto(r.cfg, r.cond, r.mu, r.logvar)
	case reqDecode:
		e.model.DecodeProbsInto(r.z, r.cond, r.probs)
	case reqFused:
		e.model.EncodeSampleDecode(r.cfg, r.cond, r.eps, r.mu, r.logvar, r.z, r.probs)
	}
	r.done = true
}

// flushLocked executes every queued request as (at most) one batched
// encoder forward plus one batched decoder forward, marks them done, and
// wakes the parked clients. The flushed clients are no longer blocked on
// the engine, so blocked decreases by the number of requests completed —
// NOT one per waking waiter, which would let a fast walker's next request
// see a stale quorum and trigger a premature tiny flush.
func (e *Engine) flushLocked() {
	q := e.queue
	if len(q) == 0 {
		return
	}
	// Settle the queue in a defer so that even a panicking kernel (a
	// construction bug — well-formed requests cannot panic) wakes the
	// parked clients instead of deadlocking the run; the panic itself
	// propagates to the flushing walker, which the sweep loop reaps.
	defer func() {
		for _, r := range q {
			r.done = true
		}
		e.blocked -= len(q)
		e.queue = e.queue[:0]
		e.cv.Broadcast()
	}()
	e.encReqs, e.decReqs = e.encReqs[:0], e.decReqs[:0]
	fused := 0
	for _, r := range q {
		switch r.kind {
		case reqEncode:
			e.encReqs = append(e.encReqs, r)
		case reqDecode:
			e.decReqs = append(e.decReqs, r)
		case reqFused:
			// Rides both phases: encoded below, reparameterized between the
			// phases, decoded with the plain decode rows.
			e.encReqs = append(e.encReqs, r)
			e.decReqs = append(e.decReqs, r)
			fused++
		}
	}

	// The whole quorum is parked on the condvar, so the cores the sweep's
	// nested-parallel hint protects are idle: let the batched kernels fan
	// out if the work justifies it (no-op on single-P runtimes).
	tensor.EnterBatchParallel()
	defer tensor.LeaveBatchParallel()

	if len(e.encReqs) > 0 {
		e.encCfgs, e.encConds = e.encCfgs[:0], e.encConds[:0]
		e.encMu, e.encLv = e.encMu[:0], e.encLv[:0]
		for _, r := range e.encReqs {
			e.encCfgs = append(e.encCfgs, r.cfg)
			e.encConds = append(e.encConds, r.cond)
			e.encMu = append(e.encMu, r.mu)
			e.encLv = append(e.encLv, r.logvar)
		}
		e.model.EncodeBatchInto(e.encCfgs, e.encConds, e.encMu, e.encLv)
	}
	for _, r := range q {
		if r.kind == reqFused {
			vae.SampleLatent(r.z, r.mu, r.logvar, r.eps)
		}
	}
	if len(e.decReqs) > 0 {
		e.decZs, e.decConds, e.decProbs = e.decZs[:0], e.decConds[:0], e.decProbs[:0]
		for _, r := range e.decReqs {
			e.decZs = append(e.decZs, r.z)
			e.decConds = append(e.decConds, r.cond)
			e.decProbs = append(e.decProbs, r.probs)
		}
		e.model.DecodeProbsBatchInto(e.decZs, e.decConds, e.decProbs)
	}

	e.stats.Batches++
	e.stats.Requests += int64(len(q))
	e.stats.Encodes += int64(len(e.encReqs))
	e.stats.Decodes += int64(len(e.decReqs))
	e.stats.Fused += int64(fused)
	if len(q) > e.stats.MaxBatch {
		e.stats.MaxBatch = len(q)
	}
}
