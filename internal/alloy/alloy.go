// Package alloy implements effective pair interaction (EPI) Hamiltonians
// for multi-component lattice alloys, the energy model DeepThermo samples.
//
// The EPI form is the pairwise truncation of a cluster expansion:
//
//	E(σ) = Σ_shells s Σ_bonds (i,j) ∈ s  V_s[σ_i][σ_j]
//
// where σ_i is the species on site i and V_s is a symmetric k×k matrix of
// pair energies for coordination shell s. This is the standard model for
// configurational thermodynamics of high-entropy alloys: the astronomical
// k^N configuration space the paper refers to is exactly the state space of
// this Hamiltonian on a supercell of N sites.
//
// All energies are in eV; temperatures in kelvin via the Boltzmann constant
// KB. The package provides O(z) swap energy differences (z = coordination),
// the operation on the Metropolis hot path.
package alloy

import (
	"fmt"

	"deepthermo/internal/lattice"
)

// KB is the Boltzmann constant in eV/K.
const KB = 8.617333262e-5

// Model is an EPI Hamiltonian bound to a lattice. It is immutable after
// construction and safe for concurrent use by many walkers (methods that
// take a configuration do not retain or mutate it except where documented).
type Model struct {
	lat   *lattice.Lattice
	k     int
	names []string
	// v[s] is the flattened k×k interaction matrix of shell s:
	// v[s][a*k+b] = V_s[a][b]. Flattened for hot-path cache locality.
	v [][]float64
}

// NewEPI constructs an EPI model with k species and per-shell interaction
// matrices vs (vs[s][a][b], eV). Matrices must be k×k and symmetric; their
// number must not exceed the lattice's neighbor shells. names is optional
// (nil, or one name per species).
func NewEPI(lat *lattice.Lattice, k int, vs [][][]float64, names []string) (*Model, error) {
	if k < 2 || k > 255 {
		return nil, fmt.Errorf("alloy: need 2..255 species, got %d", k)
	}
	if len(vs) == 0 || len(vs) > lat.NumShells() {
		return nil, fmt.Errorf("alloy: %d interaction shells for a lattice with %d neighbor shells", len(vs), lat.NumShells())
	}
	if names != nil && len(names) != k {
		return nil, fmt.Errorf("alloy: %d names for %d species", len(names), k)
	}
	m := &Model{lat: lat, k: k, names: names}
	for s, mat := range vs {
		if len(mat) != k {
			return nil, fmt.Errorf("alloy: shell %d matrix is %dx?, want %dx%d", s, len(mat), k, k)
		}
		flat := make([]float64, k*k)
		for a := 0; a < k; a++ {
			if len(mat[a]) != k {
				return nil, fmt.Errorf("alloy: shell %d row %d has %d entries, want %d", s, a, len(mat[a]), k)
			}
			for b := 0; b < k; b++ {
				if mat[a][b] != mat[b][a] {
					return nil, fmt.Errorf("alloy: shell %d matrix not symmetric at (%d,%d)", s, a, b)
				}
				flat[a*k+b] = mat[a][b]
			}
		}
		m.v = append(m.v, flat)
	}
	return m, nil
}

// Lattice returns the lattice the model is bound to.
func (m *Model) Lattice() *lattice.Lattice { return m.lat }

// NumSpecies returns the number of alloy components k.
func (m *Model) NumSpecies() int { return m.k }

// NumShells returns the number of interacting coordination shells.
func (m *Model) NumShells() int { return len(m.v) }

// SpeciesName returns the name of species a, or its index as a string.
func (m *Model) SpeciesName(a int) string {
	if m.names != nil && a >= 0 && a < len(m.names) {
		return m.names[a]
	}
	return fmt.Sprintf("X%d", a)
}

// Interaction returns V_s[a][b] in eV.
func (m *Model) Interaction(s, a, b int) float64 { return m.v[s][a*m.k+b] }

// Energy returns the total configurational energy of cfg in eV.
// Each bond is visited twice (once from each end), hence the factor ½.
func (m *Model) Energy(cfg lattice.Config) float64 {
	if len(cfg) != m.lat.NumSites() {
		panic("alloy: configuration size mismatch")
	}
	total := 0.0
	for s, flat := range m.v {
		for site, a := range cfg {
			row := flat[int(a)*m.k : (int(a)+1)*m.k]
			for _, nb := range m.lat.Neighbors(site, s) {
				total += row[cfg[nb]]
			}
		}
	}
	return total / 2
}

// siteEnergy returns the sum of bond energies from site to all interacting
// neighbors, with the species on site overridden to sp.
func (m *Model) siteEnergy(cfg lattice.Config, site int, sp lattice.Species) float64 {
	e := 0.0
	for s, flat := range m.v {
		row := flat[int(sp)*m.k : (int(sp)+1)*m.k]
		for _, nb := range m.lat.Neighbors(site, s) {
			e += row[cfg[nb]]
		}
	}
	return e
}

// SwapDeltaE returns E(cfg with sites i and j swapped) − E(cfg) in O(z).
// cfg is temporarily mutated and restored, so it must not be shared with
// concurrent readers. The i–j bond (if any) is handled exactly because the
// "after" local energies are evaluated on the swapped configuration.
func (m *Model) SwapDeltaE(cfg lattice.Config, i, j int) float64 {
	a, b := cfg[i], cfg[j]
	if a == b {
		return 0
	}
	before := m.siteEnergy(cfg, i, a) + m.siteEnergy(cfg, j, b)
	cfg[i], cfg[j] = b, a
	after := m.siteEnergy(cfg, i, b) + m.siteEnergy(cfg, j, a)
	cfg[i], cfg[j] = a, b
	return after - before
}

// MutateDeltaE returns the energy change from setting cfg[site] = sp,
// in O(z). Used by semi-grand-canonical moves and by exact enumeration.
func (m *Model) MutateDeltaE(cfg lattice.Config, site int, sp lattice.Species) float64 {
	old := cfg[site]
	if old == sp {
		return 0
	}
	return m.siteEnergy(cfg, site, sp) - m.siteEnergy(cfg, site, old)
}

// BondCount returns the total number of (unordered) bonds in shell s.
func (m *Model) BondCount(s int) int {
	return m.lat.NumSites() * m.lat.ShellSize(s) / 2
}

// EnergyBounds returns loose per-configuration energy bounds obtained from
// the extreme interaction values: min/max bond energy times bond count,
// summed over shells. The true reachable range at fixed composition is
// narrower; these bounds are used to size Wang-Landau energy windows before
// sampling tightens them.
func (m *Model) EnergyBounds() (lo, hi float64) {
	for s, flat := range m.v {
		vmin, vmax := flat[0], flat[0]
		for _, v := range flat {
			if v < vmin {
				vmin = v
			}
			if v > vmax {
				vmax = v
			}
		}
		n := float64(m.BondCount(s))
		lo += n * vmin
		hi += n * vmax
	}
	return lo, hi
}
