package alloy

import (
	"math"
	"testing"

	"deepthermo/internal/lattice"
	"deepthermo/internal/rng"
)

func TestMoNbTaVWWellFormed(t *testing.T) {
	lat := lattice.MustNew(lattice.BCC, 3, 3, 3)
	m := MoNbTaVW(lat)
	if m.NumSpecies() != 5 {
		t.Fatalf("species = %d", m.NumSpecies())
	}
	if m.SpeciesName(QV) != "V" || m.SpeciesName(QW) != "W" {
		t.Error("species names wrong")
	}
	// Symmetry of interactions across both shells.
	for s := 0; s < m.NumShells(); s++ {
		for a := 0; a < 5; a++ {
			for b := 0; b < 5; b++ {
				if m.Interaction(s, a, b) != m.Interaction(s, b, a) {
					t.Fatalf("asymmetric interaction at shell %d (%d,%d)", s, a, b)
				}
			}
		}
	}
}

func TestMoNbTaVWSwapDeltaE(t *testing.T) {
	lat := lattice.MustNew(lattice.BCC, 3, 3, 3)
	m := MoNbTaVW(lat)
	src := rng.New(1)
	cfg, err := lattice.RandomConfig(lat, []float64{1, 1, 1, 1, 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	n := lat.NumSites()
	for trial := 0; trial < 100; trial++ {
		i, j := src.Intn(n), src.Intn(n)
		before := m.Energy(cfg)
		dE := m.SwapDeltaE(cfg, i, j)
		cfg[i], cfg[j] = cfg[j], cfg[i]
		if math.Abs(m.Energy(cfg)-(before+dE)) > 1e-9 {
			t.Fatalf("quinary ΔE inconsistent at trial %d", trial)
		}
		cfg[i], cfg[j] = cfg[j], cfg[i]
	}
}

// TestMoNbTaVWOrders: the quinary alloy must develop chemical short-range
// order on cooling — the same phenomenology as the 4-component preset.
func TestMoNbTaVWOrders(t *testing.T) {
	lat := lattice.MustNew(lattice.BCC, 3, 3, 3)
	m := MoNbTaVW(lat)
	src := rng.New(2)
	cfg, err := lattice.RandomConfig(lat, []float64{1, 1, 1, 1, 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	eHot := m.Energy(cfg)
	// Quench by greedy swaps: energy must drop well below the random
	// solution (ordering energy scale ~10 meV/site).
	n := lat.NumSites()
	e := eHot
	for sweep := 0; sweep < 300; sweep++ {
		for step := 0; step < n; step++ {
			i, j := src.Intn(n), src.Intn(n)
			if dE := m.SwapDeltaE(cfg, i, j); dE < 0 {
				cfg[i], cfg[j] = cfg[j], cfg[i]
				e += dE
			}
		}
	}
	if e > eHot-0.005*float64(n) {
		t.Errorf("quench lowered energy only %g → %g eV", eHot, e)
	}
}
