package alloy

import "deepthermo/internal/lattice"

// Species indices of the refractory high-entropy alloy preset.
const (
	Nb = iota
	Mo
	Ta
	W
)

// NbMoTaW returns the 4-component refractory high-entropy-alloy EPI model
// on the given BCC lattice. The parameter set has the same form and
// magnitude scale (tens of meV, two shells) as first-principles EPIs
// published for NbMoTaW; it is a qualitative stand-in, not the proprietary
// fit (see DESIGN.md, substitutions). The dominant couplings are the
// strongly ordering Mo–Ta and Nb–W nearest-neighbor pairs, which drive the
// B2-type order-disorder transition the paper evaluates.
func NbMoTaW(lat *lattice.Lattice) *Model {
	// Shell-1 (8 neighbors) pair energies in eV. Negative off-diagonal
	// values favor unlike neighbors (chemical ordering).
	v1 := [][]float64{
		//          Nb        Mo        Ta        W
		{+0.0000, -0.0080, -0.0020, -0.0160}, // Nb
		{-0.0080, +0.0000, -0.0210, +0.0040}, // Mo
		{-0.0020, -0.0210, +0.0000, -0.0120}, // Ta
		{-0.0160, +0.0040, -0.0120, +0.0000}, // W
	}
	// Shell-2 (6 neighbors): weaker, partly frustrating shell-1 order,
	// as in the published EPI sets.
	v2 := [][]float64{
		{+0.0000, +0.0030, +0.0010, +0.0050},
		{+0.0030, +0.0000, +0.0070, -0.0020},
		{+0.0010, +0.0070, +0.0000, +0.0040},
		{+0.0050, -0.0020, +0.0040, +0.0000},
	}
	m, err := NewEPI(lat, 4, [][][]float64{v1, v2}, []string{"Nb", "Mo", "Ta", "W"})
	if err != nil {
		panic(err) // unreachable: the embedded matrices are well formed
	}
	return m
}

// Species indices of the quinary refractory preset (MoNbTaVW order).
const (
	QMo = iota
	QNb
	QTa
	QV
	QW
)

// MoNbTaVW returns the 5-component quinary refractory HEA model on the
// given BCC lattice, the larger composition family the DeepThermo paper's
// HEA studies extend to. Magnitudes follow the same tens-of-meV scale as
// the 4-component preset, with vanadium coupling strongly to the group-VI
// elements as in published quinary EPI sets.
func MoNbTaVW(lat *lattice.Lattice) *Model {
	// Shell-1 pair energies (eV), order Mo, Nb, Ta, V, W.
	v1 := [][]float64{
		{+0.0000, -0.0080, -0.0210, -0.0140, +0.0040}, // Mo
		{-0.0080, +0.0000, -0.0020, -0.0060, -0.0160}, // Nb
		{-0.0210, -0.0020, +0.0000, -0.0100, -0.0120}, // Ta
		{-0.0140, -0.0060, -0.0100, +0.0000, -0.0180}, // V
		{+0.0040, -0.0160, -0.0120, -0.0180, +0.0000}, // W
	}
	v2 := [][]float64{
		{+0.0000, +0.0030, +0.0070, +0.0040, -0.0020},
		{+0.0030, +0.0000, +0.0010, +0.0020, +0.0050},
		{+0.0070, +0.0010, +0.0000, +0.0030, +0.0040},
		{+0.0040, +0.0020, +0.0030, +0.0000, +0.0060},
		{-0.0020, +0.0050, +0.0040, +0.0060, +0.0000},
	}
	m, err := NewEPI(lat, 5, [][][]float64{v1, v2}, []string{"Mo", "Nb", "Ta", "V", "W"})
	if err != nil {
		panic(err) // unreachable: the embedded matrices are well formed
	}
	return m
}

// BinaryOrdering returns a 2-component model with a single shell and
// unlike-pair attraction j (eV, j > 0 gives ordering). On a bipartite
// lattice at 50/50 composition it is equivalent to the antiferromagnetic
// Ising model with coupling J = j/4, which makes it the standard validation
// target: small instances can be enumerated exactly (experiment E11).
func BinaryOrdering(lat *lattice.Lattice, j float64) *Model {
	v1 := [][]float64{
		{0, -j},
		{-j, 0},
	}
	m, err := NewEPI(lat, 2, [][][]float64{v1}, []string{"A", "B"})
	if err != nil {
		panic(err) // unreachable
	}
	return m
}
