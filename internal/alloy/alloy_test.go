package alloy

import (
	"math"
	"testing"
	"testing/quick"

	"deepthermo/internal/lattice"
	"deepthermo/internal/rng"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	lat := lattice.MustNew(lattice.BCC, 3, 3, 3)
	return NbMoTaW(lat)
}

func TestNewEPIValidation(t *testing.T) {
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	sym := [][]float64{{0, 1}, {1, 0}}
	asym := [][]float64{{0, 1}, {2, 0}}
	if _, err := NewEPI(lat, 2, [][][]float64{asym}, nil); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := NewEPI(lat, 2, [][][]float64{sym, sym, sym}, nil); err == nil {
		t.Error("more shells than the lattice has accepted")
	}
	if _, err := NewEPI(lat, 1, [][][]float64{{{0}}}, nil); err == nil {
		t.Error("single species accepted")
	}
	if _, err := NewEPI(lat, 2, [][][]float64{sym}, []string{"A"}); err == nil {
		t.Error("wrong name count accepted")
	}
	if _, err := NewEPI(lat, 2, [][][]float64{{{0, 1}}}, nil); err == nil {
		t.Error("non-square matrix accepted")
	}
	m, err := NewEPI(lat, 2, [][][]float64{sym}, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if m.SpeciesName(0) != "A" || m.SpeciesName(1) != "B" {
		t.Error("species names wrong")
	}
	if m.Interaction(0, 0, 1) != 1 {
		t.Error("interaction lookup wrong")
	}
}

func TestSpeciesNameFallback(t *testing.T) {
	m := testModel(t)
	if m.SpeciesName(0) != "Nb" || m.SpeciesName(3) != "W" {
		t.Error("NbMoTaW names wrong")
	}
	lat := lattice.MustNew(lattice.SC, 2, 2, 2)
	b := BinaryOrdering(lat, 0.1)
	if b.SpeciesName(5) != "X5" {
		t.Errorf("fallback name = %q", b.SpeciesName(5))
	}
}

// TestEnergyTranslationInvariance: energy must be invariant under
// relabeling sites by a lattice translation; spot-check with the uniform
// configuration and its trivial invariance, plus species permutation of a
// symmetric model.
func TestEnergyUniformConfig(t *testing.T) {
	m := testModel(t)
	lat := m.Lattice()
	// All-Nb configuration: energy = Σ_shells bonds·V[Nb][Nb] = 0 for the
	// preset (zero diagonal).
	cfg := make(lattice.Config, lat.NumSites())
	if e := m.Energy(cfg); math.Abs(e) > 1e-12 {
		t.Errorf("uniform Nb energy = %g, want 0", e)
	}
}

func TestEnergyPairCountsConsistency(t *testing.T) {
	m := testModel(t)
	lat := m.Lattice()
	cfg := lattice.EquiatomicConfig(lat, 4, rng.New(1))
	// Independent energy computation from pair counts.
	var want float64
	for s := 0; s < m.NumShells(); s++ {
		counts := lattice.PairCounts(lat, cfg, s, 4)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				want += float64(counts[a][b]) * m.Interaction(s, a, b) / 2
			}
		}
	}
	got := m.Energy(cfg)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %g, pair-count energy = %g", got, want)
	}
}

// TestSwapDeltaE is the central property test: the O(z) incremental energy
// difference must match the O(N·z) full recomputation for random swaps.
func TestSwapDeltaE(t *testing.T) {
	m := testModel(t)
	lat := m.Lattice()
	src := rng.New(2)
	cfg := lattice.EquiatomicConfig(lat, 4, src)
	n := lat.NumSites()
	err := quick.Check(func(a, b uint16) bool {
		i, j := int(a)%n, int(b)%n
		before := m.Energy(cfg)
		dE := m.SwapDeltaE(cfg, i, j)
		cfg[i], cfg[j] = cfg[j], cfg[i]
		after := m.Energy(cfg)
		cfg[i], cfg[j] = cfg[j], cfg[i] // restore
		return math.Abs((after-before)-dE) < 1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwapDeltaESameSpecies(t *testing.T) {
	m := testModel(t)
	cfg := make(lattice.Config, m.Lattice().NumSites()) // all species 0
	if dE := m.SwapDeltaE(cfg, 0, 1); dE != 0 {
		t.Errorf("same-species swap ΔE = %g", dE)
	}
}

func TestSwapDeltaERestoresConfig(t *testing.T) {
	m := testModel(t)
	src := rng.New(3)
	cfg := lattice.EquiatomicConfig(m.Lattice(), 4, src)
	cp := cfg.Clone()
	m.SwapDeltaE(cfg, 5, 40)
	for i := range cfg {
		if cfg[i] != cp[i] {
			t.Fatal("SwapDeltaE mutated the configuration")
		}
	}
}

func TestMutateDeltaE(t *testing.T) {
	m := testModel(t)
	src := rng.New(4)
	cfg := lattice.EquiatomicConfig(m.Lattice(), 4, src)
	n := m.Lattice().NumSites()
	err := quick.Check(func(a uint16, spRaw uint8) bool {
		site := int(a) % n
		sp := lattice.Species(spRaw % 4)
		before := m.Energy(cfg)
		dE := m.MutateDeltaE(cfg, site, sp)
		old := cfg[site]
		cfg[site] = sp
		after := m.Energy(cfg)
		cfg[site] = old
		return math.Abs((after-before)-dE) < 1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBoundsContainSamples(t *testing.T) {
	m := testModel(t)
	lo, hi := m.EnergyBounds()
	src := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		cfg := lattice.EquiatomicConfig(m.Lattice(), 4, src)
		e := m.Energy(cfg)
		if e < lo-1e-9 || e > hi+1e-9 {
			t.Fatalf("sampled energy %g outside bounds [%g, %g]", e, lo, hi)
		}
	}
	if !(hi > lo) {
		t.Fatalf("degenerate bounds [%g, %g]", lo, hi)
	}
}

func TestBondCount(t *testing.T) {
	m := testModel(t)
	// BCC 3³ = 54 sites: shell 1 has 54·8/2 = 216 bonds, shell 2 54·6/2=162.
	if c := m.BondCount(0); c != 216 {
		t.Errorf("shell-1 bonds = %d, want 216", c)
	}
	if c := m.BondCount(1); c != 162 {
		t.Errorf("shell-2 bonds = %d, want 162", c)
	}
}

// TestBinaryOrderingGroundState: on a bipartite BCC lattice the B2
// arrangement minimizes the unlike-attraction binary model; its energy is
// −j per shell-1 bond.
func TestBinaryOrderingGroundState(t *testing.T) {
	lat := lattice.MustNew(lattice.BCC, 4, 4, 4)
	j := 0.05
	m := BinaryOrdering(lat, j)
	b2 := make(lattice.Config, lat.NumSites())
	for i := range b2 {
		b2[i] = lattice.Species(i % 2)
	}
	want := -j * float64(m.BondCount(0))
	if got := m.Energy(b2); math.Abs(got-want) > 1e-9 {
		t.Errorf("B2 energy = %g, want %g", got, want)
	}
	// Any random configuration at the same composition must not be lower.
	src := rng.New(6)
	for trial := 0; trial < 10; trial++ {
		cfg := lattice.EquiatomicConfig(lat, 2, src)
		if m.Energy(cfg) < want-1e-9 {
			t.Fatalf("random config below B2 ground state")
		}
	}
}

func TestEnergySizeMismatchPanics(t *testing.T) {
	m := testModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	m.Energy(make(lattice.Config, 3))
}

func TestKB(t *testing.T) {
	// Sanity anchor: room temperature ≈ 25.7 meV.
	if kt := KB * 298; math.Abs(kt-0.0256777) > 1e-4 {
		t.Errorf("k_B·298K = %g eV", kt)
	}
}

func BenchmarkEnergy(b *testing.B) {
	lat := lattice.MustNew(lattice.BCC, 8, 8, 8)
	m := NbMoTaW(lat)
	cfg := lattice.EquiatomicConfig(lat, 4, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Energy(cfg)
	}
}

func BenchmarkSwapDeltaE(b *testing.B) {
	lat := lattice.MustNew(lattice.BCC, 8, 8, 8)
	m := NbMoTaW(lat)
	src := rng.New(1)
	cfg := lattice.EquiatomicConfig(lat, 4, src)
	n := lat.NumSites()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SwapDeltaE(cfg, i%n, (i*7+13)%n)
	}
}
