package lattice

import "fmt"

// SublatticeOf returns, for each site, which of the two interpenetrating
// simple-cubic sublattices of a BCC supercell it belongs to (0 = corner,
// 1 = body center). B2 (CsCl-type) chemical order — the ordered phase of
// the refractory HEA studied here — is exactly a species imbalance between
// these sublattices. Only defined for BCC lattices.
func SublatticeOf(l *Lattice) ([]uint8, error) {
	if l.Structure() != BCC {
		return nil, fmt.Errorf("lattice: sublattice decomposition defined for BCC, not %v", l.Structure())
	}
	// Site enumeration order in New is cell-major with the basis innermost,
	// so basis index = site mod 2.
	sub := make([]uint8, l.NumSites())
	for i := range sub {
		sub[i] = uint8(i % 2)
	}
	return sub, nil
}

// B2OrderParameter returns the long-range order parameter of species sp on
// a BCC lattice:
//
//	η = (n_A(sp) − n_B(sp)) / (n_A(sp) + n_B(sp))
//
// where n_A, n_B count sp on the two sublattices. η = 0 in the disordered
// solid solution; |η| → 1 when sp fully segregates onto one sublattice
// (B2 order). The sign distinguishes the two degenerate variants, so
// studies of the transition should track |η|.
func B2OrderParameter(l *Lattice, cfg Config, sp Species) (float64, error) {
	sub, err := SublatticeOf(l)
	if err != nil {
		return 0, err
	}
	if len(cfg) != l.NumSites() {
		return 0, fmt.Errorf("lattice: configuration size mismatch")
	}
	var a, b int
	for i, s := range cfg {
		if s != sp {
			continue
		}
		if sub[i] == 0 {
			a++
		} else {
			b++
		}
	}
	if a+b == 0 {
		return 0, nil
	}
	return float64(a-b) / float64(a+b), nil
}

// B2OrderParameters returns |η| for each of k species.
func B2OrderParameters(l *Lattice, cfg Config, k int) ([]float64, error) {
	out := make([]float64, k)
	for sp := 0; sp < k; sp++ {
		eta, err := B2OrderParameter(l, cfg, Species(sp))
		if err != nil {
			return nil, err
		}
		if eta < 0 {
			eta = -eta
		}
		out[sp] = eta
	}
	return out, nil
}
