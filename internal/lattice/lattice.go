// Package lattice provides periodic crystal lattices for multi-component
// alloy Monte Carlo. It supports the three cubic Bravais lattices used in
// high-entropy-alloy modelling (simple cubic, BCC, FCC), precomputed
// neighbor tables grouped by coordination shell, and site-occupancy
// configurations with the Warren-Cowley short-range-order analysis used to
// detect order-disorder transitions.
//
// Internally every site is addressed in "doubled" integer coordinates
// (twice the fractional cell coordinate), which makes all basis offsets and
// neighbor vectors exact integers: BCC sites are the points with all-even or
// all-odd coordinates, FCC sites the points with even coordinate sum.
package lattice

import "fmt"

// Structure identifies a cubic crystal structure.
type Structure int

// Supported structures.
const (
	SC  Structure = iota // simple cubic: 1 site/cell, coordination 6
	BCC                  // body-centered cubic: 2 sites/cell, coordination 8
	FCC                  // face-centered cubic: 4 sites/cell, coordination 12
)

// String returns the conventional abbreviation.
func (s Structure) String() string {
	switch s {
	case SC:
		return "sc"
	case BCC:
		return "bcc"
	case FCC:
		return "fcc"
	}
	return fmt.Sprintf("Structure(%d)", int(s))
}

// SitesPerCell returns the number of basis atoms in the conventional cell.
func (s Structure) SitesPerCell() int {
	switch s {
	case SC:
		return 1
	case BCC:
		return 2
	case FCC:
		return 4
	}
	return 0
}

// basisOffsets returns the basis atom positions in doubled coordinates.
func (s Structure) basisOffsets() [][3]int {
	switch s {
	case SC:
		return [][3]int{{0, 0, 0}}
	case BCC:
		return [][3]int{{0, 0, 0}, {1, 1, 1}}
	case FCC:
		return [][3]int{{0, 0, 0}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}
	}
	return nil
}

// shellVectors returns the neighbor displacement vectors for the first two
// coordination shells in doubled coordinates.
func (s Structure) shellVectors() [][][3]int {
	switch s {
	case SC:
		return [][][3]int{axis(2), diag2D(2)}
	case BCC:
		return [][][3]int{diag3D(1), axis(2)}
	case FCC:
		return [][][3]int{diag2D(1), axis(2)}
	}
	return nil
}

// axis returns the 6 vectors (±d,0,0),(0,±d,0),(0,0,±d).
func axis(d int) [][3]int {
	return [][3]int{{d, 0, 0}, {-d, 0, 0}, {0, d, 0}, {0, -d, 0}, {0, 0, d}, {0, 0, -d}}
}

// diag2D returns the 12 vectors with two coordinates ±d and one zero.
func diag2D(d int) [][3]int {
	var v [][3]int
	for _, a := range []int{d, -d} {
		for _, b := range []int{d, -d} {
			v = append(v, [3]int{a, b, 0}, [3]int{a, 0, b}, [3]int{0, a, b})
		}
	}
	return v
}

// diag3D returns the 8 vectors (±d,±d,±d).
func diag3D(d int) [][3]int {
	var v [][3]int
	for _, a := range []int{d, -d} {
		for _, b := range []int{d, -d} {
			for _, c := range []int{d, -d} {
				v = append(v, [3]int{a, b, c})
			}
		}
	}
	return v
}

// Lattice is an immutable periodic supercell with precomputed neighbor
// tables. It is safe for concurrent read access by many walkers.
type Lattice struct {
	structure  Structure
	nx, ny, nz int // conventional cells along each axis
	nSites     int

	// neighbors stores, for each site, the neighbor site indices of all
	// shells concatenated; shellOff[s]..shellOff[s+1] delimits shell s.
	// The layout is one flat []int32 slab for cache friendliness.
	neighbors []int32
	perSite   int   // neighbors per site (uniform on a periodic lattice)
	shellOff  []int // len = NumShells+1, offsets within a site's slab
}

// New constructs a periodic nx×ny×nz supercell of the given structure with
// two coordination shells of neighbors. It returns an error if any dimension
// is too small for the neighbor table to be well defined (a shell-2 vector
// must not wrap onto the origin site or onto a shell-1 site).
func New(structure Structure, nx, ny, nz int) (*Lattice, error) {
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, fmt.Errorf("lattice: dimensions %dx%dx%d too small (need ≥2 cells per axis)", nx, ny, nz)
	}
	basis := structure.basisOffsets()
	if basis == nil {
		return nil, fmt.Errorf("lattice: unknown structure %v", structure)
	}
	shells := structure.shellVectors()
	lat := &Lattice{
		structure: structure,
		nx:        nx, ny: ny, nz: nz,
		nSites: nx * ny * nz * len(basis),
	}

	// Map doubled coordinates to site index.
	dx, dy, dz := 2*nx, 2*ny, 2*nz
	coordIndex := make(map[[3]int]int32, lat.nSites)
	coords := make([][3]int, lat.nSites)
	idx := 0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				for _, b := range basis {
					c := [3]int{2*i + b[0], 2*j + b[1], 2*k + b[2]}
					coordIndex[c] = int32(idx)
					coords[idx] = c
					idx++
				}
			}
		}
	}

	lat.shellOff = make([]int, len(shells)+1)
	for s, vecs := range shells {
		lat.shellOff[s+1] = lat.shellOff[s] + len(vecs)
	}
	lat.perSite = lat.shellOff[len(shells)]
	lat.neighbors = make([]int32, lat.nSites*lat.perSite)

	for site := 0; site < lat.nSites; site++ {
		c := coords[site]
		pos := site * lat.perSite
		for _, vecs := range shells {
			for _, v := range vecs {
				n := [3]int{mod(c[0]+v[0], dx), mod(c[1]+v[1], dy), mod(c[2]+v[2], dz)}
				ni, ok := coordIndex[n]
				if !ok {
					return nil, fmt.Errorf("lattice: internal error, neighbor %v of site %d not on lattice", n, site)
				}
				if int(ni) == site {
					return nil, fmt.Errorf("lattice: %dx%dx%d %v supercell too small, neighbor wraps to self", nx, ny, nz, structure)
				}
				lat.neighbors[pos] = ni
				pos++
			}
		}
	}
	return lat, nil
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// MustNew is New but panics on error, for tests and examples with
// compile-time-known dimensions.
func MustNew(structure Structure, nx, ny, nz int) *Lattice {
	lat, err := New(structure, nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return lat
}

// Structure returns the crystal structure.
func (l *Lattice) Structure() Structure { return l.structure }

// Dims returns the supercell dimensions in conventional cells.
func (l *Lattice) Dims() (nx, ny, nz int) { return l.nx, l.ny, l.nz }

// NumSites returns the total number of lattice sites.
func (l *Lattice) NumSites() int { return l.nSites }

// NumShells returns the number of coordination shells in the neighbor table.
func (l *Lattice) NumShells() int { return len(l.shellOff) - 1 }

// ShellSize returns the coordination number of shell s.
func (l *Lattice) ShellSize(s int) int { return l.shellOff[s+1] - l.shellOff[s] }

// Neighbors returns the neighbor indices of site in shell s. The returned
// slice aliases the internal table and must not be modified.
func (l *Lattice) Neighbors(site, s int) []int32 {
	base := site * l.perSite
	return l.neighbors[base+l.shellOff[s] : base+l.shellOff[s+1]]
}

// AllNeighbors returns the neighbors of site across all shells (shell order).
// The returned slice aliases the internal table and must not be modified.
func (l *Lattice) AllNeighbors(site int) []int32 {
	base := site * l.perSite
	return l.neighbors[base : base+l.perSite]
}
