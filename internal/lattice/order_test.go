package lattice

import (
	"math"
	"testing"

	"deepthermo/internal/rng"
)

func TestSublatticeOf(t *testing.T) {
	lat := MustNew(BCC, 3, 3, 3)
	sub, err := SublatticeOf(lat)
	if err != nil {
		t.Fatal(err)
	}
	// Equal split between sublattices.
	var a int
	for _, s := range sub {
		if s == 0 {
			a++
		}
	}
	if a != lat.NumSites()/2 {
		t.Errorf("sublattice A has %d of %d sites", a, lat.NumSites())
	}
	// Every shell-1 neighbor is on the opposite sublattice (bipartite).
	for site := 0; site < lat.NumSites(); site++ {
		for _, nb := range lat.Neighbors(site, 0) {
			if sub[site] == sub[nb] {
				t.Fatalf("shell-1 neighbors %d,%d share a sublattice", site, nb)
			}
		}
	}
}

func TestSublatticeOfRejectsNonBCC(t *testing.T) {
	if _, err := SublatticeOf(MustNew(FCC, 2, 2, 2)); err == nil {
		t.Error("FCC accepted")
	}
	if _, err := SublatticeOf(MustNew(SC, 2, 2, 2)); err == nil {
		t.Error("SC accepted")
	}
}

func TestB2OrderParameterPerfectOrder(t *testing.T) {
	lat := MustNew(BCC, 4, 4, 4)
	cfg := make(Config, lat.NumSites())
	for i := range cfg {
		cfg[i] = Species(i % 2) // species 0 on sublattice A, 1 on B
	}
	eta0, err := B2OrderParameter(lat, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eta0-1) > 1e-12 {
		t.Errorf("η(0) = %g, want 1", eta0)
	}
	eta1, _ := B2OrderParameter(lat, cfg, 1)
	if math.Abs(eta1+1) > 1e-12 {
		t.Errorf("η(1) = %g, want −1", eta1)
	}
}

func TestB2OrderParameterRandomNearZero(t *testing.T) {
	lat := MustNew(BCC, 8, 8, 8)
	cfg := EquiatomicConfig(lat, 4, rng.New(1))
	etas, err := B2OrderParameters(lat, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for sp, eta := range etas {
		if eta > 0.15 {
			t.Errorf("random solution |η(%d)| = %g, want ≈0", sp, eta)
		}
		if eta < 0 {
			t.Errorf("B2OrderParameters returned negative magnitude %g", eta)
		}
	}
}

func TestB2OrderParameterAbsentSpecies(t *testing.T) {
	lat := MustNew(BCC, 2, 2, 2)
	cfg := make(Config, lat.NumSites()) // all species 0
	eta, err := B2OrderParameter(lat, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if eta != 0 {
		t.Errorf("absent species η = %g", eta)
	}
}

func TestB2OrderParameterSizeMismatch(t *testing.T) {
	lat := MustNew(BCC, 2, 2, 2)
	if _, err := B2OrderParameter(lat, make(Config, 3), 0); err == nil {
		t.Error("size mismatch accepted")
	}
}
