package lattice

import (
	"fmt"

	"deepthermo/internal/rng"
)

// Species is a site occupant, an index into an alloy's component list.
type Species = uint8

// Config is the occupancy of every site of a Lattice. Config values are
// plain slices so they copy, hash, and serialize cheaply; all structural
// information lives in the Lattice they were created for.
type Config []Species

// Clone returns an independent copy of c.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Counts returns the number of sites occupied by each of k species.
func (c Config) Counts(k int) []int {
	counts := make([]int, k)
	for _, sp := range c {
		counts[sp]++
	}
	return counts
}

// RandomConfig returns a configuration with exactly round(conc[i]*N) sites
// of species i (remainders assigned to the last species), shuffled uniformly
// at random. Fixed composition matters: the alloy Hamiltonian is sampled in
// the canonical (fixed-concentration) ensemble, where MC moves are swaps.
func RandomConfig(l *Lattice, conc []float64, src *rng.Source) (Config, error) {
	n := l.NumSites()
	cfg := make(Config, 0, n)
	total := 0.0
	for _, c := range conc {
		if c < 0 {
			return nil, fmt.Errorf("lattice: negative concentration %g", c)
		}
		total += c
	}
	if total <= 0 {
		return nil, fmt.Errorf("lattice: concentrations sum to %g", total)
	}
	for i, c := range conc {
		count := int(c/total*float64(n) + 0.5)
		if i == len(conc)-1 {
			count = n - len(cfg)
		}
		if count < 0 || len(cfg)+count > n {
			count = n - len(cfg)
		}
		for j := 0; j < count; j++ {
			cfg = append(cfg, Species(i))
		}
	}
	for len(cfg) < n { // rounding shortfall: pad with last species
		cfg = append(cfg, Species(len(conc)-1))
	}
	src.Shuffle(n, func(i, j int) { cfg[i], cfg[j] = cfg[j], cfg[i] })
	return cfg, nil
}

// EquiatomicConfig returns a random configuration with k species in equal
// proportions, the canonical high-entropy-alloy composition.
func EquiatomicConfig(l *Lattice, k int, src *rng.Source) Config {
	conc := make([]float64, k)
	for i := range conc {
		conc[i] = 1
	}
	cfg, err := RandomConfig(l, conc, src)
	if err != nil {
		panic(err) // unreachable: equal positive concentrations are valid
	}
	return cfg
}

// PairCounts returns the symmetric k×k matrix of ordered pair counts in
// shell s: entry [a][b] is the number of (site, neighbor) pairs with species
// a on the site and b on the neighbor. Each unordered bond is counted twice
// (once from each end), so the unordered bond count is PairCounts/2 on the
// diagonal-symmetrized matrix.
func PairCounts(l *Lattice, cfg Config, s, k int) [][]int {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	for site := 0; site < l.NumSites(); site++ {
		a := cfg[site]
		for _, nb := range l.Neighbors(site, s) {
			counts[a][cfg[nb]]++
		}
	}
	return counts
}

// WarrenCowley returns the Warren-Cowley short-range-order parameters
// α_ab for shell s: α_ab = 1 - P(b | neighbor of a) / c_b, where c_b is the
// global concentration of species b. α = 0 for an ideal random solution;
// α_ab < 0 signals preferred a-b ordering (e.g. B2), α_ab > 0 clustering.
func WarrenCowley(l *Lattice, cfg Config, s, k int) [][]float64 {
	counts := PairCounts(l, cfg, s, k)
	n := l.NumSites()
	speciesCount := cfg.Counts(k)
	z := float64(l.ShellSize(s))
	alpha := make([][]float64, k)
	for a := range alpha {
		alpha[a] = make([]float64, k)
		na := float64(speciesCount[a])
		if na == 0 {
			continue
		}
		for b := range alpha[a] {
			cb := float64(speciesCount[b]) / float64(n)
			if cb == 0 {
				continue
			}
			pab := float64(counts[a][b]) / (na * z)
			alpha[a][b] = 1 - pab/cb
		}
	}
	return alpha
}
