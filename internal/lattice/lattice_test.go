package lattice

import (
	"testing"

	"deepthermo/internal/rng"
)

func TestCoordinationNumbers(t *testing.T) {
	cases := []struct {
		s      Structure
		shell0 int
		shell1 int
	}{
		{SC, 6, 12},
		{BCC, 8, 6},
		{FCC, 12, 6},
	}
	for _, c := range cases {
		lat := MustNew(c.s, 4, 4, 4)
		if got := lat.ShellSize(0); got != c.shell0 {
			t.Errorf("%v shell-1 coordination = %d, want %d", c.s, got, c.shell0)
		}
		if got := lat.ShellSize(1); got != c.shell1 {
			t.Errorf("%v shell-2 coordination = %d, want %d", c.s, got, c.shell1)
		}
	}
}

func TestNumSites(t *testing.T) {
	if n := MustNew(SC, 3, 4, 5).NumSites(); n != 60 {
		t.Errorf("SC 3x4x5: %d sites, want 60", n)
	}
	if n := MustNew(BCC, 3, 3, 3).NumSites(); n != 54 {
		t.Errorf("BCC 3³: %d sites, want 54", n)
	}
	if n := MustNew(FCC, 2, 2, 2).NumSites(); n != 32 {
		t.Errorf("FCC 2³: %d sites, want 32", n)
	}
}

// TestNeighborSymmetry checks the fundamental bond symmetry: j is a
// shell-s neighbor of i iff i is a shell-s neighbor of j.
func TestNeighborSymmetry(t *testing.T) {
	for _, s := range []Structure{SC, BCC, FCC} {
		lat := MustNew(s, 3, 4, 3)
		for site := 0; site < lat.NumSites(); site++ {
			for shell := 0; shell < lat.NumShells(); shell++ {
				for _, nb := range lat.Neighbors(site, shell) {
					found := false
					for _, back := range lat.Neighbors(int(nb), shell) {
						if int(back) == site {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%v: site %d has neighbor %d in shell %d but not vice versa", s, site, nb, shell)
					}
				}
			}
		}
	}
}

// TestNeighborsDistinct checks no site appears twice in a site's combined
// neighbor list (would double-count bonds).
func TestNeighborsDistinct(t *testing.T) {
	for _, s := range []Structure{SC, BCC, FCC} {
		lat := MustNew(s, 3, 3, 3)
		for site := 0; site < lat.NumSites(); site++ {
			seen := map[int32]bool{}
			for _, nb := range lat.AllNeighbors(site) {
				if seen[nb] {
					t.Fatalf("%v site %d: duplicate neighbor %d", s, site, nb)
				}
				if int(nb) == site {
					t.Fatalf("%v site %d: self neighbor", s, site)
				}
				seen[nb] = true
			}
		}
	}
}

func TestTooSmallRejected(t *testing.T) {
	if _, err := New(BCC, 1, 4, 4); err == nil {
		t.Error("1-cell axis accepted")
	}
}

func TestDims(t *testing.T) {
	lat := MustNew(FCC, 2, 3, 4)
	nx, ny, nz := lat.Dims()
	if nx != 2 || ny != 3 || nz != 4 {
		t.Errorf("Dims = %d,%d,%d", nx, ny, nz)
	}
	if lat.Structure() != FCC {
		t.Errorf("Structure = %v", lat.Structure())
	}
}

func TestStructureString(t *testing.T) {
	if SC.String() != "sc" || BCC.String() != "bcc" || FCC.String() != "fcc" {
		t.Error("structure names wrong")
	}
	if Structure(9).String() == "" {
		t.Error("unknown structure has empty name")
	}
}

func TestRandomConfigComposition(t *testing.T) {
	lat := MustNew(BCC, 4, 4, 4) // 128 sites
	src := rng.New(1)
	cfg, err := RandomConfig(lat, []float64{0.25, 0.25, 0.25, 0.25}, src)
	if err != nil {
		t.Fatal(err)
	}
	counts := cfg.Counts(4)
	for sp, c := range counts {
		if c != 32 {
			t.Errorf("species %d: %d sites, want 32", sp, c)
		}
	}
}

func TestRandomConfigUnevenConcentrations(t *testing.T) {
	lat := MustNew(SC, 4, 4, 4) // 64 sites
	src := rng.New(2)
	cfg, err := RandomConfig(lat, []float64{3, 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	counts := cfg.Counts(2)
	if counts[0] != 48 || counts[1] != 16 {
		t.Errorf("counts %v, want [48 16]", counts)
	}
}

func TestRandomConfigRejectsBadInput(t *testing.T) {
	lat := MustNew(SC, 2, 2, 2)
	src := rng.New(3)
	if _, err := RandomConfig(lat, []float64{-1, 2}, src); err == nil {
		t.Error("negative concentration accepted")
	}
	if _, err := RandomConfig(lat, []float64{0, 0}, src); err == nil {
		t.Error("zero-sum concentrations accepted")
	}
}

func TestEquiatomicConfig(t *testing.T) {
	lat := MustNew(BCC, 4, 4, 4)
	cfg := EquiatomicConfig(lat, 4, rng.New(4))
	counts := cfg.Counts(4)
	for _, c := range counts {
		if c != 32 {
			t.Fatalf("equiatomic counts %v", counts)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	lat := MustNew(SC, 2, 2, 2)
	cfg := EquiatomicConfig(lat, 2, rng.New(5))
	cp := cfg.Clone()
	cp[0] ^= 1
	if cfg[0] == cp[0] {
		t.Error("Clone shares storage")
	}
}

func TestPairCountsTotal(t *testing.T) {
	lat := MustNew(BCC, 3, 3, 3)
	cfg := EquiatomicConfig(lat, 2, rng.New(6))
	for shell := 0; shell < lat.NumShells(); shell++ {
		counts := PairCounts(lat, cfg, shell, 2)
		total := 0
		for _, row := range counts {
			for _, c := range row {
				total += c
			}
		}
		want := lat.NumSites() * lat.ShellSize(shell)
		if total != want {
			t.Errorf("shell %d: total ordered pairs %d, want %d", shell, total, want)
		}
	}
}

func TestPairCountsSymmetric(t *testing.T) {
	lat := MustNew(FCC, 3, 3, 3)
	cfg := EquiatomicConfig(lat, 4, rng.New(7))
	counts := PairCounts(lat, cfg, 0, 4)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if counts[a][b] != counts[b][a] {
				t.Fatalf("pair counts asymmetric at (%d,%d): %d vs %d", a, b, counts[a][b], counts[b][a])
			}
		}
	}
}

// TestWarrenCowleyRandomNearZero: a random solution has α ≈ 0.
func TestWarrenCowleyRandomNearZero(t *testing.T) {
	lat := MustNew(BCC, 8, 8, 8) // 1024 sites
	cfg := EquiatomicConfig(lat, 4, rng.New(8))
	alpha := WarrenCowley(lat, cfg, 0, 4)
	for a := range alpha {
		for b := range alpha[a] {
			if v := alpha[a][b]; v < -0.1 || v > 0.1 {
				t.Errorf("random solution α[%d][%d] = %g, want ≈0", a, b, v)
			}
		}
	}
}

// TestWarrenCowleyB2Order: a perfect B2 (CsCl) arrangement on BCC has
// α_AB = −1 in shell 1 (every shell-1 neighbor of A is B) and α_AA = +1.
func TestWarrenCowleyB2Order(t *testing.T) {
	lat := MustNew(BCC, 4, 4, 4)
	// Basis atom 0 (corner) → A, basis atom 1 (center) → B: sites
	// alternate in index because New enumerates basis atoms innermost.
	cfg := make(Config, lat.NumSites())
	for i := range cfg {
		cfg[i] = Species(i % 2)
	}
	alpha := WarrenCowley(lat, cfg, 0, 2)
	if alpha[0][1] > -0.999 || alpha[1][0] > -0.999 {
		t.Errorf("B2 α_AB = %g, %g, want −1", alpha[0][1], alpha[1][0])
	}
	if alpha[0][0] < 0.999 || alpha[1][1] < 0.999 {
		t.Errorf("B2 α_AA = %g, α_BB = %g, want +1", alpha[0][0], alpha[1][1])
	}
}

func TestCountsAndSpecies(t *testing.T) {
	cfg := Config{0, 1, 1, 2, 2, 2}
	c := cfg.Counts(3)
	if c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Errorf("Counts = %v", c)
	}
}

func BenchmarkNeighbors(b *testing.B) {
	lat := MustNew(BCC, 16, 16, 16)
	var sink int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nb := range lat.Neighbors(i%lat.NumSites(), 0) {
			sink += nb
		}
	}
	_ = sink
}

func BenchmarkBuildLattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustNew(BCC, 16, 16, 16)
	}
}
