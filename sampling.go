package deepthermo

import (
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rng"
)

// WarrenCowley returns the Warren-Cowley short-range-order parameters
// α[a][b] of cfg for coordination shell s with k species (0 = random
// solution, negative = a-b ordering, positive = clustering).
func WarrenCowley(l *Lattice, cfg Config, s, k int) [][]float64 {
	return lattice.WarrenCowley(l, cfg, s, k)
}

// SamplerConfig configures a canonical Metropolis walker on a System.
type SamplerConfig struct {
	Seed uint64
	// DLWeight is the fraction of moves drawn from the trained DL global
	// proposal (0 = pure local swaps; requires TrainProposal first when
	// nonzero).
	DLWeight float64
	// CondT is the DL proposal's conditioning temperature in kelvin
	// (default 1000; only used when DLWeight > 0).
	CondT float64
}

// NewSampler returns a canonical Metropolis walker over a fresh random
// on-composition configuration of the system. Drive it with Sweep /
// StepCanonical and read Cfg / E / AcceptanceRate.
func (s *System) NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Seed == 0 {
		cfg.Seed = s.cfg.Seed + 41
	}
	if cfg.CondT == 0 {
		cfg.CondT = 1000
	}
	src := rng.New(cfg.Seed)
	start := s.randomConfig(src)
	var prop Proposal = mc.NewSwapProposal(s.Ham)
	if cfg.DLWeight > 0 && s.Model != nil {
		gp := mc.NewGlobalProposal(s.Model.CloneWeights(src), s.Ham, s.Quota, mc.CondForT(cfg.CondT))
		prop = mc.NewMixture([]Proposal{prop, gp}, []float64{1 - cfg.DLWeight, cfg.DLWeight})
	}
	return mc.NewSampler(s.Ham, start, prop, src)
}
