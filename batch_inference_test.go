package deepthermo

import (
	"math"
	"testing"

	"deepthermo/internal/rng"
	"deepthermo/internal/vae"
)

// batchParitySystem builds a small system with a fixed-seed (untrained)
// proposal model; the DL proposal only needs weights, and untrained weights
// exercise the full accept/reject machinery.
func batchParitySystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{Cells: 2, Seed: 3, Latent: 4, Hidden: 24})
	if err != nil {
		t.Fatal(err)
	}
	model, err := vae.New(vae.Config{
		Sites:   sys.Lat.NumSites(),
		Species: sys.Ham.NumSpecies(),
		Latent:  4,
		Hidden:  24,
		BetaKL:  1,
	}, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	sys.Model = model
	return sys
}

// TestSampleDOSBatchInferenceParity runs the same multi-walker REWL DOS
// sampling twice — sequential per-walker models vs. the shared batched
// inference engine — and requires the results to be bit-identical: same
// convergence, same sweep/round counts, and the same ln g in every bin to
// the last bit. This pins the whole chain: the engine's row-independent
// kernels, the sweep-phase quorum bracketing, and the factory's RNG
// draw-parity burn (vae.WeightDraws).
func TestSampleDOSBatchInferenceParity(t *testing.T) {
	cfg := DOSConfig{Windows: 2, Walkers: 4, Bins: 16, LnFFinal: 1e-2, DLWeight: 0.3}

	seq, err := batchParitySystem(t).SampleDOS(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.BatchInference = true
	bat, err := batchParitySystem(t).SampleDOS(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Converged != bat.Converged || seq.Sweeps != bat.Sweeps || seq.Rounds != bat.Rounds {
		t.Fatalf("run shape diverged: sequential {conv:%v sweeps:%d rounds:%d} vs batched {conv:%v sweeps:%d rounds:%d}",
			seq.Converged, seq.Sweeps, seq.Rounds, bat.Converged, bat.Sweeps, bat.Rounds)
	}
	if len(seq.DOS.LogG) != len(bat.DOS.LogG) {
		t.Fatalf("bin counts diverged: %d vs %d", len(seq.DOS.LogG), len(bat.DOS.LogG))
	}
	if math.Float64bits(seq.DOS.EMin) != math.Float64bits(bat.DOS.EMin) ||
		math.Float64bits(seq.DOS.BinWidth) != math.Float64bits(bat.DOS.BinWidth) {
		t.Fatalf("energy grid diverged")
	}
	for i := range seq.DOS.LogG {
		if math.Float64bits(seq.DOS.LogG[i]) != math.Float64bits(bat.DOS.LogG[i]) {
			t.Fatalf("bin %d: ln g %x (sequential) != %x (batched)", i, seq.DOS.LogG[i], bat.DOS.LogG[i])
		}
	}

	if bat.Batch == nil {
		t.Fatal("batched run reported no engine stats")
	}
	if bat.Batch.Requests == 0 {
		t.Fatal("batched run never routed a request through the engine")
	}
	if bat.Batch.MaxBatch < 2 {
		t.Fatalf("engine never coalesced: max batch %d", bat.Batch.MaxBatch)
	}
	if seq.Batch != nil {
		t.Fatal("sequential run unexpectedly reported engine stats")
	}
}
