// Ablation benchmarks for this reproduction's own design choices (A1-A5)
// and the independent-method cross-check (E12). Run with:
//
//	go test -bench=Ablation -benchtime=1x
//	go test -bench=BenchmarkE12 -benchtime=1x
package deepthermo_test

import (
	"testing"

	"deepthermo/internal/experiments"
	"deepthermo/internal/hpcsim"
)

// BenchmarkAblationKLWeight regenerates A1: the KL weight of the proposal
// VAE controls the calibration/energy-information trade-off that decides
// acceptance.
func BenchmarkAblationKLWeight(b *testing.B) {
	tb := sharedTB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationKLWeight(tb, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Format())
		if i == 0 {
			b.ReportMetric(res.Rows[0].Acc300, "acc300@beta1.0")
		}
	}
}

// BenchmarkAblationDLWeight regenerates A3: the DL fraction of the
// production proposal mixture vs WL convergence speedup and coverage.
func BenchmarkAblationDLWeight(b *testing.B) {
	tb := sharedTB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDLWeight(tb, nil)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Format())
		if i == 0 {
			best := 0.0
			for _, row := range res.Rows {
				if row.Speedup > best {
					best = row.Speedup
				}
			}
			b.ReportMetric(best, "best-speedup")
		}
	}
}

// BenchmarkAblationScheduledMixture regenerates A6: fixed DL weights vs
// the ln f-driven schedule (DL-heavy exploration, local-heavy refinement).
func BenchmarkAblationScheduledMixture(b *testing.B) {
	tb := sharedTB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationScheduledMixture(tb, 0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Format())
		if i == 0 {
			b.ReportMetric(res.Speedup, "scheduled-vs-fixed")
		}
	}
}

// BenchmarkAblationWLSchedule regenerates A4: halving vs 1/t schedules
// against exact enumeration.
func BenchmarkAblationWLSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWLSchedule(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Format())
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.RMS, "rms:"+row.Schedule)
			}
		}
	}
}

// BenchmarkAblationAllreduce regenerates A5: flat-ring vs hierarchical
// allreduce on both modeled machines.
func BenchmarkAblationAllreduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []hpcsim.Machine{hpcsim.Summit, hpcsim.Crusher} {
			res := experiments.AblationAllreduce(m, 0, nil)
			printOnce(i, res.Format())
			if i == 0 {
				last := res.Rows[len(res.Rows)-1]
				b.ReportMetric(last.FlatRing/last.Hierarchical, "ratio@3072:"+m.Name[:6])
			}
		}
	}
}

// BenchmarkE12CrossCheck regenerates the independent-method validation:
// parallel tempering vs DOS reweighting on the same alloy.
func BenchmarkE12CrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TemperingCrossCheck(experiments.E12Options{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, res.Format())
		if i == 0 {
			b.ReportMetric(res.MaxDU, "max|dU|(eV/site)")
		}
	}
}
