#!/usr/bin/env bash
# Multi-process smoke test for the TCP transport and distributed REWL.
#
# Scenario 1 (bit-identity): a coordinator plus two dtworker processes
# run the seeded REWL job over real sockets; the leader's DOS checksum
# must equal the single-process reference checksum from `dtworker -local`.
#
# Scenario 2 (fault tolerance): a three-process world starts a
# non-converging run, one non-leader worker is killed with SIGKILL
# mid-run, and the leader must still finish — reporting the dead rank's
# windows as degraded — while the coordinator reports the failed rank.
#
# Scenario 3 (elastic rejoin): a two-process world runs the converging
# job with checkpoints and -rejoin-wait; the non-leader worker is killed
# with SIGKILL mid-run, a replacement process joins, the world rolls back
# to the newest common checkpoint round, and the leader's summary must
# show rejoins=1, degraded_windows=0, and the exact DOS checksum of the
# uninterrupted local reference run.
#
# Usage: scripts/distributed_smoke.sh
# Exits nonzero on any mismatch or timeout.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

log() { echo "smoke: $*"; }
fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

# wait_for FILE PATTERN SECONDS — poll FILE until PATTERN appears.
wait_for() {
    local file="$1" pat="$2" deadline=$((SECONDS + $3))
    until grep -q "$pat" "$file" 2>/dev/null; do
        ((SECONDS < deadline)) || fail "timed out waiting for '$pat' in $file"
        sleep 0.2
    done
}

log "building dtworker"
go build -o "$tmp/dtworker" ./cmd/dtworker

# --- Scenario 1: 2-process TCP run reproduces the local checksum -----------

log "scenario 1: local reference run"
"$tmp/dtworker" -local -job rewl >"$tmp/local.log" 2>&1
ref=$(grep -o 'dos_checksum=[0-9a-f]*' "$tmp/local.log") ||
    fail "no dos_checksum in local output"
log "reference $ref"

log "scenario 1: coordinator + 2 workers over TCP"
"$tmp/dtworker" -coordinate -listen 127.0.0.1:0 -world 2 >"$tmp/coord1.log" 2>&1 &
pids+=($!)
wait_for "$tmp/coord1.log" 'listening on' 20
addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/coord1.log")
log "coordinator at $addr"

"$tmp/dtworker" -join "$addr" -job rewl >"$tmp/w1a.log" 2>&1 &
w1a=$!; pids+=("$w1a")
"$tmp/dtworker" -join "$addr" -job rewl >"$tmp/w1b.log" 2>&1 &
w1b=$!; pids+=("$w1b")
wait "$w1a" || fail "worker A exited nonzero"
wait "$w1b" || fail "worker B exited nonzero"
wait_for "$tmp/coord1.log" 'world finished cleanly' 20

got=$(grep -ho 'dos_checksum=[0-9a-f]*' "$tmp/w1a.log" "$tmp/w1b.log" | head -1) ||
    fail "no dos_checksum in worker output"
[[ "$got" == "$ref" ]] ||
    fail "distributed checksum $got != local reference $ref"
log "scenario 1 OK: distributed run reproduced $ref"

# --- Scenario 2: kill -9 one worker, leader degrades and finishes ----------

log "scenario 2: 3-process world, SIGKILL one worker mid-run"
"$tmp/dtworker" -coordinate -listen 127.0.0.1:0 -world 3 >"$tmp/coord2.log" 2>&1 &
pids+=($!)
wait_for "$tmp/coord2.log" 'listening on' 20
addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/coord2.log")

# A target ln f of 1e-300 never converges, so the run spans the full
# round budget and the kill lands while sweeps are still in flight.
job=(-join "$addr" -job rewl -windows 3 -lnf 1e-300 -max-rounds 4000 -v)
declare -A wpid
for w in a b c; do
    "$tmp/dtworker" "${job[@]}" >"$tmp/w2$w.log" 2>&1 &
    wpid[$w]=$!; pids+=("${wpid[$w]}")
done

# Rank assignment follows join order, which is racy — map log files back
# to ranks, find the leader (rank 0), and pick a non-leader victim.
leader="" victim=""
for w in a b c; do
    wait_for "$tmp/w2$w.log" 'joined world' 20
    if grep -q 'rank 0' "$tmp/w2$w.log"; then leader=$w; fi
    if grep -q 'rank 1' "$tmp/w2$w.log"; then victim=$w; fi
done
[[ -n "$leader" && -n "$victim" ]] || fail "could not map workers to ranks"

wait_for "$tmp/w2$leader.log" 'round 3:' 30
log "killing rank 1 (worker $victim, pid ${wpid[$victim]})"
kill -9 "${wpid[$victim]}"
{ wait "${wpid[$victim]}" || true; } 2>/dev/null

wait "${wpid[$leader]}" || fail "leader exited nonzero after worker death"
wait_for "$tmp/coord2.log" 'failed ranks' 30

grep -q 'degraded_windows=[1-9]' "$tmp/w2$leader.log" ||
    fail "leader summary reports no degraded windows: $(grep 'rewl done' "$tmp/w2$leader.log" || true)"
grep -q 'failed_walkers=[1-9]' "$tmp/w2$leader.log" ||
    fail "leader summary reports no failed walkers"
log "scenario 2 OK: $(grep -o 'degraded_windows=[0-9]*' "$tmp/w2$leader.log" | head -1) after SIGKILL"

# --- Scenario 3: kill -9, replacement rejoins, checksum identity ------------

log "scenario 3: elastic world — SIGKILL one worker, rejoin a replacement"
"$tmp/dtworker" -coordinate -listen 127.0.0.1:0 -world 2 >"$tmp/coord3.log" 2>&1 &
pids+=($!)
wait_for "$tmp/coord3.log" 'listening on' 20
addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/coord3.log")

# A fixed-length run (ln f target unreachable, hard round cap) keeps the
# kill window wide and the reference deterministic; checkpoints every
# other round, and the leader told to wait for a replacement instead of
# degrading.
params3=(-job rewl -lnf 1e-300 -max-rounds 1000)
log "scenario 3: local reference run"
"$tmp/dtworker" -local "${params3[@]}" >"$tmp/local3.log" 2>&1
ref=$(grep -o 'dos_checksum=[0-9a-f]*' "$tmp/local3.log") ||
    fail "no dos_checksum in local output"
log "reference $ref"

job3=(-join "$addr" "${params3[@]}" -checkpoint "$tmp/ckpt3" -checkpoint-every 10 -rejoin-wait 60s -v)
for w in a b; do
    "$tmp/dtworker" "${job3[@]}" >"$tmp/w3$w.log" 2>&1 &
    wpid[$w]=$!; pids+=("${wpid[$w]}")
done
leader="" victim=""
for w in a b; do
    wait_for "$tmp/w3$w.log" 'joined world' 20
    if grep -q 'rank 0' "$tmp/w3$w.log"; then leader=$w; fi
    if grep -q 'rank 1' "$tmp/w3$w.log"; then victim=$w; fi
done
[[ -n "$leader" && -n "$victim" ]] || fail "could not map workers to ranks"

# Kill rank 1 once several checkpoints exist but long before the
# 1000-round cap: the world must roll back to the newest common round.
wait_for "$tmp/w3$leader.log" 'round 50:' 60
log "killing rank 1 (worker $victim, pid ${wpid[$victim]})"
kill -9 "${wpid[$victim]}"
{ wait "${wpid[$victim]}" || true; } 2>/dev/null

wait_for "$tmp/w3$leader.log" 'awaiting a replacement' 30
log "spawning replacement worker"
"$tmp/dtworker" "${job3[@]}" >"$tmp/w3c.log" 2>&1 &
repl=$!; pids+=("$repl")

wait "${wpid[$leader]}" || fail "leader exited nonzero after rejoin"
wait "$repl" || fail "replacement worker exited nonzero"

grep -q 'rejoined; world rolled back to round' "$tmp/w3$leader.log" ||
    fail "leader never logged the rollback rejoin"
summary=$(grep 'rewl done' "$tmp/w3$leader.log" || true)
grep -q 'rejoins=1' <<<"$summary" ||
    fail "leader summary lacks rejoins=1: $summary"
grep -q 'degraded_windows=0' <<<"$summary" ||
    fail "leader summary reports degraded windows after rejoin: $summary"
got=$(grep -o 'dos_checksum=[0-9a-f]*' <<<"$summary") ||
    fail "no dos_checksum in leader summary"
[[ "$got" == "$ref" ]] ||
    fail "rejoined checksum $got != local reference $ref"
wait_for "$tmp/coord3.log" 'rejoins: 1' 20
log "scenario 3 OK: rejoined run reproduced $ref with zero degraded windows"

log "all scenarios passed"
