#!/usr/bin/env bash
# Fleet-mode smoke test for dtserve: lease-based job failover over a
# shared directory.
#
# Scenario: two dtserve replicas share one -fleet-dir. A sampling job is
# submitted to one replica; whichever replica claims the lease is killed
# with SIGKILL mid-campaign (no shutdown path — heartbeats just stop).
# After the lease TTL the survivor must take the job over, resume it
# from the dead owner's last shared REWL checkpoint, and commit a DOS
# artifact that is byte-identical to an uninterrupted single-replica run
# of the same spec.
#
# Usage: scripts/fleet_smoke.sh
# Exits nonzero on any mismatch or timeout.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

log() { echo "fleet-smoke: $*"; }
fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }

# jfield JSON KEY — extract a flat string field ("key": "value").
jfield() {
    grep -o "\"$2\": *\"[^\"]*\"" <<<"$1" | head -1 | sed 's/.*: *"//; s/"$//'
}

# wait_http URL SECONDS — poll until the endpoint answers 2xx.
wait_http() {
    local url="$1" deadline=$((SECONDS + $2))
    until curl -fsS "$url" >/dev/null 2>&1; do
        ((SECONDS < deadline)) || fail "timed out waiting for $url"
        sleep 0.2
    done
}

# wait_done BASE JOB SECONDS — poll a job until done; fail on failed/cancelled.
wait_done() {
    local base="$1" job="$2" deadline=$((SECONDS + $3)) body
    while :; do
        body=$(curl -fsS "$base/v1/jobs/$job" 2>/dev/null || true)
        grep -q '"state": *"done"' <<<"$body" && return 0
        grep -Eq '"state": *"(failed|cancelled)"' <<<"$body" &&
            fail "job $job ended badly: $body"
        ((SECONDS < deadline)) || fail "timed out waiting for job $job on $base"
        sleep 0.5
    done
}

# A seeded spec long enough (lnf_final 1e-6) to survive until the kill
# lands, checkpointing every round so the survivor always has a recent
# shared checkpoint to resume from.
spec='{"type":"sample","system":{"cells":2,"seed":3},"dos":{"windows":2,"bins":16,"lnf_final":1e-6,"no_dl":true,"checkpoint_every":1}}'

log "building dtserve"
go build -o "$tmp/dtserve" ./cmd/dtserve

# --- Reference: the same spec, one replica, never interrupted --------------

ref_base="http://127.0.0.1:18080"
"$tmp/dtserve" -addr 127.0.0.1:18080 -workers 1 >"$tmp/ref.log" 2>&1 &
refpid=$!; pids+=("$refpid")
wait_http "$ref_base/healthz" 20

resp=$(curl -fsS -X POST "$ref_base/v1/jobs" -d "$spec")
refjob=$(jfield "$resp" id)
[[ -n "$refjob" ]] || fail "no job id in submit response: $resp"
log "reference job $refjob running"
wait_done "$ref_base" "$refjob" 240

refdos=$(jfield "$(curl -fsS "$ref_base/v1/jobs/$refjob")" dos_artifact)
[[ -n "$refdos" ]] || fail "reference job has no dos_artifact"
curl -fsS "$ref_base/v1/artifacts/$refdos/data" -o "$tmp/ref.dos"
kill -9 "$refpid" 2>/dev/null || true
ref_sum=$(sha256sum "$tmp/ref.dos" | cut -d' ' -f1)
log "reference DOS $refdos sha256=$ref_sum"

# --- Fleet: two replicas, one shared dir, SIGKILL the lease owner ----------

mkdir "$tmp/fleet"
declare -A base pid
for r in ra rb; do
    p=$((18081 + $([ "$r" = rb ] && echo 1 || echo 0)))
    base[$r]="http://127.0.0.1:$p"
    "$tmp/dtserve" -addr "127.0.0.1:$p" -workers 1 \
        -fleet-dir "$tmp/fleet" -replica-id "$r" \
        -lease-ttl 2s -lease-heartbeat 500ms >"$tmp/$r.log" 2>&1 &
    pid[$r]=$!; pids+=("${pid[$r]}")
done
wait_http "${base[ra]}/healthz" 20
wait_http "${base[rb]}/healthz" 20

resp=$(curl -fsS -X POST "${base[ra]}/v1/jobs" -d "$spec")
job=$(jfield "$resp" id)
[[ -n "$job" ]] || fail "no job id in fleet submit response: $resp"
log "fleet job $job enqueued via ra"

# Either replica may win the claim race — find the lease owner via metrics.
owner="" deadline=$((SECONDS + 30))
while [[ -z "$owner" ]]; do
    for r in ra rb; do
        if curl -fsS "${base[$r]}/metrics" 2>/dev/null |
            grep -q '^dtserve_fleet_leases_held 1'; then
            owner=$r
        fi
    done
    ((SECONDS < deadline)) || fail "no replica claimed the job"
    [[ -n "$owner" ]] || sleep 0.2
done
survivor=$([ "$owner" = ra ] && echo rb || echo ra)
log "replica $owner owns the lease; $survivor will survive"

# The survivor can only resume from a checkpoint that reached the shared
# dir before the crash.
ckpt="$tmp/fleet/checkpoints/$job/rewl.ckpt"
deadline=$((SECONDS + 60))
until [[ -f "$ckpt" ]]; do
    ((SECONDS < deadline)) || fail "no shared checkpoint appeared at $ckpt"
    sleep 0.1
done

log "killing lease owner $owner (pid ${pid[$owner]}) mid-campaign"
kill -9 "${pid[$owner]}"
{ wait "${pid[$owner]}" || true; } 2>/dev/null

wait_done "${base[$survivor]}" "$job" 240
final=$(curl -fsS "${base[$survivor]}/v1/jobs/$job")
grep -q '"resumed": *true' <<<"$final" ||
    fail "taken-over job did not resume from the checkpoint: $final"
curl -fsS "${base[$survivor]}/metrics" |
    grep -q '^dtserve_fleet_takeovers_total [1-9]' ||
    fail "survivor finished the job without recording a takeover"

dos=$(jfield "$final" dos_artifact)
[[ -n "$dos" ]] || fail "taken-over job has no dos_artifact: $final"
curl -fsS "${base[$survivor]}/v1/artifacts/$dos/data" -o "$tmp/got.dos"
got_sum=$(sha256sum "$tmp/got.dos" | cut -d' ' -f1)
log "survivor DOS $dos sha256=$got_sum"

cmp -s "$tmp/got.dos" "$tmp/ref.dos" ||
    fail "taken-over DOS differs from uninterrupted reference ($got_sum != $ref_sum)"
log "OK: survivor resumed after kill -9 and reproduced the reference DOS byte for byte"
