// Phase transition study: the order-disorder transition of the refractory
// high-entropy alloy seen two independent ways — chemical short-range
// order from canonical sampling, and the heat-capacity peak from the
// density of states. Their agreement is the paper's phase-transition
// evaluation (experiments E4 + E5).
package main

import (
	"fmt"
	"log"

	"deepthermo"
)

func main() {
	log.SetFlags(0)

	sys, err := deepthermo.NewSystem(deepthermo.SystemConfig{Cells: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-transition study: %d-site NbMoTaW-like alloy\n\n", sys.Lat.NumSites())

	// 1. Short-range order vs temperature from canonical sampling.
	// α(Mo-Ta) < 0 signals the B2-type chemical ordering that drives the
	// transition; it vanishes in the disordered solid solution.
	temps := []float64{200, 400, 600, 900, 1300, 1800, 2400, 3000}
	fmt.Printf("%8s %12s %12s %14s\n", "T(K)", "α(Mo-Ta)", "α(Nb-W)", "E/site (eV)")
	for _, t := range temps {
		s := sys.NewSampler(deepthermo.SamplerConfig{Seed: uint64(t)})
		for i := 0; i < 400; i++ {
			s.Sweep(t)
		}
		// Average the SRO over decorrelated snapshots.
		var aMoTa, aNbW, e float64
		const snaps = 20
		for k := 0; k < snaps; k++ {
			for g := 0; g < 10; g++ {
				s.Sweep(t)
			}
			alpha := deepthermo.WarrenCowley(sys.Lat, s.Cfg, 0, 4)
			aMoTa += alpha[1][2] // Mo-Ta
			aNbW += alpha[0][3]  // Nb-W
			e += s.E
		}
		fmt.Printf("%8.0f %12.4f %12.4f %14.5f\n",
			t, aMoTa/snaps, aNbW/snaps, e/snaps/float64(sys.Lat.NumSites()))
	}

	// 2. The same transition from the density of states: the C_v peak.
	fmt.Println("\nsampling the density of states for the Cv curve...")
	if err := sys.TrainProposal(nil); err != nil {
		log.Fatal(err)
	}
	res, err := sys.SampleDOS(deepthermo.DOSConfig{Windows: 8, Bins: 48, LnFFinal: 3e-4})
	if err != nil {
		log.Fatal(err)
	}
	pts, err := sys.Thermodynamics(res.DOS, nil)
	if err != nil {
		log.Fatal(err)
	}
	tc, cv, err := deepthermo.TransitionTemperature(pts)
	if err != nil {
		log.Fatal(err)
	}
	n := float64(sys.Lat.NumSites())
	fmt.Printf("Cv peak: Tc ≈ %.0f K (%.3f kB/site)\n", tc, cv/n/deepthermo.KB)
	fmt.Println("compare: the SRO onset above and the Cv peak mark the same transition.")
}
