// Scaling study: reproduces the paper's scalability evaluation — REWL
// weak/strong scaling and distributed data-parallel training throughput up
// to 3,072 devices on models of the Summit (NVIDIA V100) and Crusher
// (AMD MI250X) supercomputers. The functional algorithms run in this
// repository's goroutine-based comm layer; this example extends their
// measured behaviour to machine scale with the calibrated performance
// model (see DESIGN.md, substitutions).
package main

import (
	"fmt"

	"deepthermo/internal/experiments"
)

func main() {
	opts := experiments.ScalingOptions{
		DeviceCounts: []int{8, 24, 96, 384, 1536, 3072},
		Sites:        8192,
	}
	fmt.Print(experiments.WeakScaling(opts).Format())
	fmt.Println()
	fmt.Print(experiments.StrongScaling(opts).Format())
	fmt.Println()
	fmt.Print(experiments.TrainingScaling(opts).Format())

	fmt.Println("\nend-to-end composition with a measured 3x WL convergence speedup:")
	res, err := experiments.TimeToSolution(experiments.E10Options{Speedup: 3})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Format())
}
