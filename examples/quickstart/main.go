// Quickstart: the complete DeepThermo pipeline on a small alloy in under a
// minute — generate training data, train the deep-learning proposal model,
// sample the density of states with replica-exchange Wang-Landau, and read
// off the thermodynamics.
package main

import (
	"fmt"
	"log"

	"deepthermo"
)

func main() {
	log.SetFlags(0)

	// A 16-atom BCC supercell of the 4-component refractory HEA.
	sys, err := deepthermo.NewSystem(deepthermo.SystemConfig{Cells: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: %d-site NbMoTaW-like alloy, composition %v\n",
		sys.Lat.NumSites(), sys.Quota)

	// Generate a small temperature-ladder dataset and train the VAE
	// proposal model on it.
	if _, err := sys.GenerateData(&deepthermo.DataConfig{SamplesPerTemp: 100, LadderLen: 5}); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainProposal(&deepthermo.TrainOptions{
		Epochs: 20, BatchSize: 32, LR: 2e-3, Seed: 7, KLWarmupEpochs: 7,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposal model trained: %d parameters\n", sys.Model.NumParams())

	// Sample the density of states with the DL-accelerated REWL.
	res, err := sys.SampleDOS(deepthermo.DOSConfig{Windows: 3, Bins: 24, LnFFinal: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DOS sampled: converged=%v, ln g spans %.1f over %d bins\n",
		res.Converged, res.DOS.Span(), res.DOS.Bins())

	// Thermodynamics at any temperature from the one converged DOS.
	pts, err := sys.Thermodynamics(res.DOS, nil)
	if err != nil {
		log.Fatal(err)
	}
	tc, _, err := deepthermo.TransitionTemperature(pts)
	if err != nil {
		log.Fatal(err)
	}
	n := float64(sys.Lat.NumSites())
	fmt.Printf("\n%8s %14s %14s\n", "T(K)", "U/N (eV)", "Cv/N (kB)")
	for i, p := range pts {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("%8.0f %14.5f %14.4f\n", p.T, p.U/n, p.Cv/n/deepthermo.KB)
	}
	fmt.Printf("\norder-disorder transition: Tc ≈ %.0f K\n", tc)
}
