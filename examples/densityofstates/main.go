// Density-of-states study: the paper's headline capability — directly
// evaluating a density of states whose values span thousands of nats
// (~e^10,000 at the paper's 8192-atom scale). This example converges the
// DOS on a ladder of supercell sizes, prints the ln g profile of the
// largest, and shows the ln g span growing linearly with system size
// toward the paper-scale figure.
package main

import (
	"fmt"
	"log"

	"deepthermo"
	"deepthermo/internal/dos"
)

func main() {
	log.SetFlags(0)

	fmt.Println("density-of-states study (replica-exchange Wang-Landau)")
	fmt.Printf("%8s %16s %18s\n", "sites", "span(ln g)", "ln(total states)")

	var last *deepthermo.LogDOS
	var lastSites int
	for _, cells := range []int{2, 3} {
		sys, err := deepthermo.NewSystem(deepthermo.SystemConfig{Cells: cells, Seed: 31})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.SampleDOS(deepthermo.DOSConfig{
			Windows: 8, Bins: 48, LnFFinal: 3e-4, NoDL: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		n := sys.Lat.NumSites()
		logStates, err := dos.LogMultinomial(n, sys.Quota)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %16.1f %18.1f\n", n, res.DOS.Span(), logStates)
		last, lastSites = res.DOS, n
	}

	// Profile of the largest run: ln g(E), the quantity the paper plots.
	fmt.Printf("\nln g(E) profile, %d sites:\n%8s %14s\n", lastSites, "E (eV)", "ln g")
	for i := 0; i < last.Bins(); i++ {
		if !last.Visited(i) {
			continue
		}
		fmt.Printf("%8.3f %14.2f\n", last.BinEnergy(i), last.LogG[i])
	}

	// The paper-scale extrapolation: ln g spans the configurational
	// entropy, which is extensive.
	paperQuota := []int{2048, 2048, 2048, 2048}
	paperLog, err := dos.LogMultinomial(8192, paperQuota)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nln g spans ≈ the configurational entropy and grows ∝ N:\n")
	fmt.Printf("at the paper's 8192-atom supercell the density of states spans ~e^%.0f (≳ e^10,000)\n", paperLog)
}
