// Package deepthermo is a parallel Monte Carlo sampling framework for
// thermodynamics evaluation of high-entropy alloys, reproducing the system
// described in "DeepThermo: Deep Learning Accelerated Parallel Monte Carlo
// Sampling for Thermodynamics Evaluation of High Entropy Alloys"
// (Yin, Wang, Shankar; IPDPS 2023).
//
// The package is a facade over the substrate packages in internal/: it
// wires the full DeepThermo pipeline — lattice + effective-pair-interaction
// Hamiltonian, temperature-ladder data generation, conditional-VAE proposal
// training, replica-exchange Wang-Landau sampling with deep-learning global
// updates, and canonical thermodynamics from the converged density of
// states. The type aliases below expose the substrate types directly for
// callers that need lower-level control.
//
// Minimal use (see examples/quickstart for the runnable version):
//
//	sys, _ := deepthermo.NewSystem(deepthermo.SystemConfig{Cells: 3})
//	_ = sys.TrainProposal(nil)
//	res, _ := sys.SampleDOS(deepthermo.DOSConfig{})
//	curve, _ := sys.Thermodynamics(res.DOS, nil)
package deepthermo

import (
	"context"
	"fmt"
	"time"

	"deepthermo/internal/alloy"
	"deepthermo/internal/chaos"
	"deepthermo/internal/dos"
	"deepthermo/internal/infer"
	"deepthermo/internal/lattice"
	"deepthermo/internal/mc"
	"deepthermo/internal/rewl"
	"deepthermo/internal/rng"
	"deepthermo/internal/thermo"
	"deepthermo/internal/train"
	"deepthermo/internal/vae"
	"deepthermo/internal/wanglandau"
	"deepthermo/internal/workload"
)

// Aliases exposing the substrate types through the public API.
type (
	// Lattice is a periodic crystal supercell (internal/lattice).
	Lattice = lattice.Lattice
	// Config is a site-occupancy configuration.
	Config = lattice.Config
	// Hamiltonian is an effective-pair-interaction energy model.
	Hamiltonian = alloy.Model
	// ProposalModel is the conditional VAE behind the DL proposal.
	ProposalModel = vae.Model
	// LogDOS is a log-domain density of states.
	LogDOS = dos.LogDOS
	// ThermoPoint is one temperature's canonical observables.
	ThermoPoint = thermo.Point
	// Window is a Wang-Landau energy window.
	Window = wanglandau.Window
	// Proposal is a Metropolis-Hastings move generator.
	Proposal = mc.Proposal
	// Sampler is a Metropolis walker.
	Sampler = mc.Sampler
	// Dataset is a labelled configuration set for proposal training.
	Dataset = workload.Dataset
	// TrainOptions configures proposal-model training.
	TrainOptions = train.Options
)

// KB is the Boltzmann constant in eV/K.
const KB = alloy.KB

// SystemConfig describes the alloy system to study.
type SystemConfig struct {
	// Cells is the BCC supercell edge in conventional cells
	// (sites = 2·Cells³). Default 3.
	Cells int
	// Seed is the master RNG seed. Default 1.
	Seed uint64
	// VAE hyperparameters (defaults: Latent 8, Hidden 96).
	Latent, Hidden int
	// Alloy selects the embedded Hamiltonian preset: "NbMoTaW" (default,
	// 4 components) or "MoNbTaVW" (5 components).
	Alloy string
}

// System is a configured DeepThermo pipeline for one alloy system.
type System struct {
	Lat   *Lattice
	Ham   *Hamiltonian
	Quota []int // fixed equiatomic composition
	Model *ProposalModel

	cfg  SystemConfig
	data *Dataset
}

// NewSystem builds the NbMoTaW-like refractory HEA on a BCC supercell.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Cells == 0 {
		cfg.Cells = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Latent == 0 {
		cfg.Latent = 6
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 96
	}
	lat, err := lattice.New(lattice.BCC, cfg.Cells, cfg.Cells, cfg.Cells)
	if err != nil {
		return nil, err
	}
	var ham *alloy.Model
	switch cfg.Alloy {
	case "", "NbMoTaW":
		ham = alloy.NbMoTaW(lat)
	case "MoNbTaVW":
		ham = alloy.MoNbTaVW(lat)
	default:
		return nil, fmt.Errorf("deepthermo: unknown alloy preset %q (want NbMoTaW or MoNbTaVW)", cfg.Alloy)
	}
	n := lat.NumSites()
	k := ham.NumSpecies()
	quota := make([]int, k)
	for i := range quota {
		quota[i] = n / k
	}
	for i := 0; i < n-(n/k)*k; i++ {
		quota[i]++
	}
	return &System{Lat: lat, Ham: ham, Quota: quota, cfg: cfg}, nil
}

// DataConfig controls training-set generation.
type DataConfig struct {
	TempLo, TempHi float64 // ladder range in K (default 300..3000)
	LadderLen      int     // rungs (default 8)
	SamplesPerTemp int     // default 250
}

// GenerateData runs the temperature-ladder baseline MC and stores the
// labelled dataset on the system (it is also returned).
func (s *System) GenerateData(cfg *DataConfig) (*Dataset, error) {
	return s.GenerateDataContext(context.Background(), cfg)
}

// GenerateDataContext is GenerateData with cooperative cancellation: the
// ladder chains poll ctx between sweeps. On cancellation the partial
// dataset is returned with ctx's error and is not stored on the system.
func (s *System) GenerateDataContext(ctx context.Context, cfg *DataConfig) (*Dataset, error) {
	c := DataConfig{TempLo: 300, TempHi: 3000, LadderLen: 8, SamplesPerTemp: 250}
	if cfg != nil {
		if cfg.TempLo > 0 {
			c.TempLo = cfg.TempLo
		}
		if cfg.TempHi > 0 {
			c.TempHi = cfg.TempHi
		}
		if cfg.LadderLen > 0 {
			c.LadderLen = cfg.LadderLen
		}
		if cfg.SamplesPerTemp > 0 {
			c.SamplesPerTemp = cfg.SamplesPerTemp
		}
	}
	ds, err := workload.GenerateContext(ctx, s.Ham, workload.GenOptions{
		Temps:          workload.TempLadder(c.TempLo, c.TempHi, c.LadderLen),
		SamplesPerTemp: c.SamplesPerTemp,
		EquilSweeps:    150,
		GapSweeps:      5,
		Seed:           s.cfg.Seed + 7,
		Quota:          s.Quota,
	})
	if err != nil {
		return ds, err
	}
	s.data = ds
	return ds, nil
}

// TrainProposal trains the conditional-VAE proposal model with the
// standard recipe (Adam, KL warmup). A nil opts selects the defaults; if
// no dataset has been generated yet, GenerateData runs with defaults.
func (s *System) TrainProposal(opts *TrainOptions) error {
	return s.TrainProposalContext(context.Background(), opts)
}

// TrainProposalContext is TrainProposal with cooperative cancellation,
// polled once per training batch (and between sweeps of the implicit data
// generation). On cancellation no model is installed on the system.
func (s *System) TrainProposalContext(ctx context.Context, opts *TrainOptions) error {
	if s.data == nil {
		if _, err := s.GenerateDataContext(ctx, nil); err != nil {
			return err
		}
	}
	o := TrainOptions{Epochs: 40, BatchSize: 32, LR: 2e-3, Seed: s.cfg.Seed + 17, KLWarmupEpochs: 13}
	if opts != nil {
		o = *opts
	}
	model, err := vae.New(vae.Config{
		Sites:   s.Lat.NumSites(),
		Species: s.Ham.NumSpecies(),
		Latent:  s.cfg.Latent,
		Hidden:  s.cfg.Hidden,
		BetaKL:  1.0,
	}, rng.New(s.cfg.Seed+13))
	if err != nil {
		return err
	}
	if _, err := train.FitContext(ctx, model, s.data, o); err != nil {
		return err
	}
	s.Model = model
	return nil
}

// DOSConfig controls a replica-exchange Wang-Landau run.
type DOSConfig struct {
	Windows  int     // energy windows (default 4)
	Walkers  int     // walkers per window (default 1)
	Bins     int     // total energy bins (default 48)
	Overlap  float64 // window overlap (default 0.75)
	LnFFinal float64 // convergence target (default 1e-4)
	DLWeight float64 // DL share of the proposal mixture (default 0.15; 0 disables DL even with a trained model)
	NoDL     bool    // force the pure local-swap baseline

	// OneOverT switches the walkers to the Belardinelli-Pereyra 1/t
	// modification-factor schedule, which removes the late-stage
	// saturation stall of pure flatness-driven ln f halving.
	OneOverT bool
	// Adaptive enables the adaptive parallelisation layer: per-round
	// window telemetry and deterministic walker rebalancing from
	// converged windows into stragglers (rewl.AdaptiveOptions defaults).
	Adaptive bool

	// BatchInference routes every walker's DL-proposal forwards through one
	// shared batched inference engine (package infer) instead of per-walker
	// weight clones: requests from all walkers in a sweep round coalesce
	// into batch-major matmuls on a single hot copy of the weights. The
	// sampled DOS is bit-identical to the per-walker path — the engine's
	// kernels are row-independent and the proposal factory burns exactly the
	// RNG draws the replaced per-walker clone would have consumed (see
	// vae.WeightDraws) — so this is purely a throughput switch.
	BatchInference bool

	// CheckpointDir enables crash-safe checkpoint/restart: the full REWL
	// run state is written atomically to this directory every
	// CheckpointEvery rounds (default 10 when a dir is set). With Resume,
	// a run continues bit-identically from the directory's checkpoint if
	// one exists, so restart loops can set Resume unconditionally.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// Faults injects a deterministic walker-failure schedule (package
	// chaos) for fault-tolerance tests and chaos experiments; nil means no
	// faults. Ranks are wi·Walkers+k, steps are walker sweep counts.
	Faults *FaultPlan
	// WalkerTimeout bounds each walker's sweep round; stragglers are
	// declared dead and the run continues without them (0 disables).
	WalkerTimeout time.Duration
}

// FaultPlan aliases chaos.Plan, the deterministic fault schedule consumed
// by DOSConfig.Faults.
type FaultPlan = chaos.Plan

// DOSResult is a converged (or cut-off) density-of-states run.
type DOSResult struct {
	DOS       *LogDOS
	Converged bool
	Sweeps    int64
	Rounds    int
	// Resumed reports whether the run continued from a checkpoint.
	Resumed bool
	// FailedWalkers counts walkers lost to crashes, panics, or straggler
	// timeouts; DegradedWindows counts windows that lost every walker and
	// contributed only their last consensus (Converged is then false).
	FailedWalkers   int
	DegradedWindows int
	// Migrations counts walkers the adaptive controller moved into
	// straggler windows (0 unless DOSConfig.Adaptive).
	Migrations int
	// Batch reports the batched inference engine's activity when
	// DOSConfig.BatchInference was set (nil otherwise).
	Batch *BatchStats
}

// BatchStats aliases infer.Stats, the batched-engine activity counters
// surfaced on DOSResult and in server job results.
type BatchStats = infer.Stats

// SampleDOS runs REWL over the system's reachable energy range, using the
// DL-accelerated proposal mixture when a trained model is available.
func (s *System) SampleDOS(cfg DOSConfig) (*DOSResult, error) {
	return s.SampleDOSContext(context.Background(), cfg)
}

// SampleDOSContext is SampleDOS with cooperative cancellation: the REWL
// walkers poll ctx once per sweep. On cancellation a partial DOSResult
// (Converged=false, normalized over whatever was merged) is returned
// alongside ctx's error when the sampled windows can still be stitched,
// so callers may persist partial progress.
func (s *System) SampleDOSContext(ctx context.Context, cfg DOSConfig) (*DOSResult, error) {
	if cfg.Windows == 0 {
		cfg.Windows = 4
	}
	if cfg.Walkers == 0 {
		cfg.Walkers = 1
	}
	if cfg.Bins == 0 {
		cfg.Bins = 48
	}
	if cfg.Overlap == 0 {
		cfg.Overlap = 0.75
	}
	if cfg.LnFFinal == 0 {
		cfg.LnFFinal = 1e-4
	}
	if cfg.DLWeight == 0 {
		cfg.DLWeight = 0.15
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	src := rng.New(s.cfg.Seed + 23)
	lo, hi, seedCfg := s.sampleEnergyRange(src)
	binW := (hi - lo) / float64(cfg.Bins)
	wins, err := rewl.SplitWindows(lo, hi, cfg.Windows, cfg.Overlap, binW)
	if err != nil {
		return nil, err
	}

	// With BatchInference, one engine owns a single weight copy and every
	// walker gets a coalescing client; the factory burns exactly the
	// Float64 draws CloneWeights would have taken from the walker's stream,
	// so every downstream draw — and therefore the whole run — stays
	// bit-identical to the per-walker-clone path.
	var engine *infer.Engine
	if cfg.BatchInference && !cfg.NoDL && s.Model != nil {
		engine = infer.NewEngine(s.Model.CloneWeights(rng.New(s.cfg.Seed + 31)))
	}
	factory := func(win, widx int, wsrc *rng.Source) mc.Proposal {
		if cfg.NoDL || s.Model == nil {
			return mc.NewSwapProposal(s.Ham)
		}
		var gp *mc.GlobalProposal
		if engine != nil {
			for i, n := 0, vae.WeightDraws(s.Model.Config()); i < n; i++ {
				wsrc.Float64()
			}
			gp = mc.NewGlobalProposalWith(engine.NewClient(), s.Ham, s.Quota, mc.CondForT(1000))
		} else {
			gp = mc.NewGlobalProposal(s.Model.CloneWeights(wsrc), s.Ham, s.Quota, mc.CondForT(1000))
		}
		return mc.NewMixture(
			[]mc.Proposal{mc.NewSwapProposal(s.Ham), gp},
			[]float64{1 - cfg.DLWeight, cfg.DLWeight},
		)
	}
	run, runErr := rewl.RunContext(ctx, s.Ham, seedCfg, wins, factory, rewl.Options{
		Seed:             s.cfg.Seed + 29,
		WalkersPerWindow: cfg.Walkers,
		WL:               wanglandau.Options{LnFFinal: cfg.LnFFinal},
		OneOverT:         cfg.OneOverT,
		Adaptive:         rewl.AdaptiveOptions{Enabled: cfg.Adaptive},
		PrepareSweeps:    20000,
		CheckpointDir:    cfg.CheckpointDir,
		CheckpointEvery:  cfg.CheckpointEvery,
		Resume:           cfg.Resume,
		Faults:           cfg.Faults,
		WalkerTimeout:    cfg.WalkerTimeout,
	})
	if run == nil {
		return nil, runErr
	}
	logStates, err := dos.LogMultinomial(s.Lat.NumSites(), s.Quota)
	if err != nil {
		return nil, err
	}
	run.DOS.NormalizeTo(logStates)
	res := &DOSResult{
		DOS:             run.DOS,
		Converged:       run.AllConverged,
		Sweeps:          run.TotalSweeps,
		Rounds:          run.Rounds,
		Resumed:         run.Resumed,
		FailedWalkers:   run.FailedWalkers,
		DegradedWindows: run.DegradedWindows,
		Migrations:      run.Migrations,
	}
	if engine != nil {
		st := engine.Stats()
		res.Batch = &st
	}
	return res, runErr
}

// Thermodynamics reweights a density of states into canonical observables
// over the given temperatures (default 100..3500 K, 35 points).
func (s *System) Thermodynamics(d *LogDOS, temps []float64) ([]ThermoPoint, error) {
	if d == nil {
		return nil, fmt.Errorf("deepthermo: nil density of states")
	}
	if temps == nil {
		temps = thermo.TempRange(100, 3500, 35)
	}
	return thermo.Curve(d, temps)
}

// TransitionTemperature locates the C_v peak of a thermodynamic curve.
func TransitionTemperature(pts []ThermoPoint) (tc, cvPeak float64, err error) {
	return thermo.TransitionTemperature(pts)
}

// randomConfig builds a shuffled on-quota configuration.
func (s *System) randomConfig(src *rng.Source) Config {
	cfg := make(Config, 0, s.Lat.NumSites())
	for sp, q := range s.Quota {
		for i := 0; i < q; i++ {
			cfg = append(cfg, lattice.Species(sp))
		}
	}
	src.Shuffle(len(cfg), func(i, j int) { cfg[i], cfg[j] = cfg[j], cfg[i] })
	return cfg
}

// sampleEnergyRange estimates the reachable [lo, hi) energy range by
// annealing (minimum) and hot sampling (maximum), returning the annealed
// minimum-energy configuration as the REWL seed.
func (s *System) sampleEnergyRange(src *rng.Source) (lo, hi float64, best Config) {
	cfg := s.randomConfig(src)
	w := mc.NewSampler(s.Ham, cfg, mc.NewSwapProposal(s.Ham), src)
	hi = w.E
	for i := 0; i < 100; i++ {
		w.Sweep(6000)
		if w.E > hi {
			hi = w.E
		}
	}
	w.Anneal([]float64{3000, 1500, 800, 400, 200, 100, 50}, 120)
	lo = w.E
	best = w.Cfg.Clone()
	for i := 0; i < 200; i++ {
		w.Sweep(40)
		if w.E < lo {
			lo = w.E
			copy(best, w.Cfg)
		}
	}
	span := hi - lo
	return lo - 0.02*span, hi + 0.10*span, best
}
