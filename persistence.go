package deepthermo

import (
	"fmt"
	"io"
	"os"

	"deepthermo/internal/dos"
	"deepthermo/internal/vae"
)

// SaveProposalModel writes the trained proposal model to w.
func (s *System) SaveProposalModel(w io.Writer) error {
	if s.Model == nil {
		return fmt.Errorf("deepthermo: no trained model to save")
	}
	return s.Model.Save(w)
}

// LoadProposalModel reads a proposal model saved by SaveProposalModel and
// installs it, replacing any trained model. The model must match the
// system's lattice size and species count.
func (s *System) LoadProposalModel(r io.Reader) error {
	m, err := vae.Load(r)
	if err != nil {
		return err
	}
	cfg := m.Config()
	if cfg.Sites != s.Lat.NumSites() || cfg.Species != s.Ham.NumSpecies() {
		return fmt.Errorf("deepthermo: model is for %d sites × %d species, system has %d × %d",
			cfg.Sites, cfg.Species, s.Lat.NumSites(), s.Ham.NumSpecies())
	}
	s.Model = m
	return nil
}

// SaveModelFile and LoadModelFile are path-based conveniences.
func (s *System) SaveModelFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.SaveProposalModel(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile loads a proposal model from path.
func (s *System) LoadModelFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadProposalModel(f)
}

// SaveDOS writes a density of states to w.
func SaveDOS(d *LogDOS, w io.Writer) error { return d.Save(w) }

// LoadDOS reads a density of states saved by SaveDOS.
func LoadDOS(r io.Reader) (*LogDOS, error) { return dos.Load(r) }
