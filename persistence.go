package deepthermo

import (
	"fmt"
	"io"
	"os"

	"deepthermo/internal/dos"
	"deepthermo/internal/fsx"
	"deepthermo/internal/vae"
)

// SaveProposalModel writes the trained proposal model to w.
func (s *System) SaveProposalModel(w io.Writer) error {
	if s.Model == nil {
		return fmt.Errorf("deepthermo: no trained model to save")
	}
	return s.Model.Save(w)
}

// LoadProposalModel reads a proposal model saved by SaveProposalModel and
// installs it, replacing any trained model. The model must match the
// system's lattice size and species count.
func (s *System) LoadProposalModel(r io.Reader) error {
	m, err := vae.Load(r)
	if err != nil {
		return err
	}
	cfg := m.Config()
	if cfg.Sites != s.Lat.NumSites() || cfg.Species != s.Ham.NumSpecies() {
		return fmt.Errorf("deepthermo: model is for %d sites × %d species, system has %d × %d",
			cfg.Sites, cfg.Species, s.Lat.NumSites(), s.Ham.NumSpecies())
	}
	s.Model = m
	return nil
}

// SaveModelFile and LoadModelFile are path-based conveniences. The write
// is atomic: the model is serialized to a temporary file in the target's
// directory and renamed into place, so a crash or error mid-write never
// leaves a truncated artifact at path.
func (s *System) SaveModelFile(path string) error {
	return WriteFileAtomic(path, s.SaveProposalModel)
}

// LoadModelFile loads a proposal model from path.
func (s *System) LoadModelFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadProposalModel(f)
}

// SaveDOS writes a density of states to w.
func SaveDOS(d *LogDOS, w io.Writer) error { return d.Save(w) }

// LoadDOS reads a density of states saved by SaveDOS.
func LoadDOS(r io.Reader) (*LogDOS, error) { return dos.Load(r) }

// SaveDOSFile atomically writes a density of states to path (see
// SaveModelFile for the temp-file-and-rename contract).
func SaveDOSFile(d *LogDOS, path string) error {
	return WriteFileAtomic(path, d.Save)
}

// LoadDOSFile reads a density of states from path.
func LoadDOSFile(path string) (*LogDOS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dos.Load(f)
}

// WriteFileAtomic streams write's output into a temporary file in path's
// directory, fsyncs it, renames it over path, and fsyncs the parent
// directory. On any error the temporary file is removed and path is left
// untouched — readers (and the artifact registry in internal/server) never
// observe a torn write, and a committed write survives power loss, not
// just process crash (see internal/fsx).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return fsx.WriteFileAtomic(path, write)
}
