package deepthermo

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestModelFileRoundTrip(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.TrainProposal(&TrainOptions{Epochs: 2, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := sys.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}

	// A fresh system of the same shape loads it and decodes identically.
	sys2, err := NewSystem(SystemConfig{Cells: 2, Seed: 99, Latent: 4, Hidden: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 4)
	a := sys.Model.DecodeProbs(z, 0.5)
	b := sys2.Model.DecodeProbs(z, 0.5)
	for site := range a {
		for k := range a[site] {
			if a[site][k] != b[site][k] {
				t.Fatal("loaded model decodes differently")
			}
		}
	}
}

func TestLoadModelShapeMismatch(t *testing.T) {
	small := newTestSystem(t)
	if err := small.TrainProposal(&TrainOptions{Epochs: 1, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := small.SaveProposalModel(&buf); err != nil {
		t.Fatal(err)
	}
	big, err := NewSystem(SystemConfig{Cells: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.LoadProposalModel(&buf); err == nil {
		t.Fatal("size-mismatched model accepted")
	}
}

func TestSaveModelWithoutTraining(t *testing.T) {
	sys := newTestSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveProposalModel(&buf); err == nil {
		t.Fatal("untrained save accepted")
	}
	if err := sys.SaveModelFile(filepath.Join(t.TempDir(), "m.bin")); err == nil {
		t.Fatal("untrained file save accepted")
	}
}

func TestModelFilePathErrors(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.LoadModelFile("/nonexistent/path/model.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := sys.TrainProposal(&TrainOptions{Epochs: 1, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveModelFile("/nonexistent/dir/model.bin"); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestDOSSaveLoadFacade(t *testing.T) {
	sys := newTestSystem(t)
	res, err := sys.SampleDOS(DOSConfig{Windows: 2, Bins: 16, LnFFinal: 1e-2, NoDL: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDOS(res.DOS, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDOS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bins() != res.DOS.Bins() || loaded.Span() != res.DOS.Span() {
		t.Fatal("DOS round trip changed content")
	}
	// Thermodynamics from the reloaded DOS works.
	if _, err := sys.Thermodynamics(loaded, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDOS(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage DOS accepted")
	}
}

// TestSaveModelFileAtomic: a failing save must leave an existing artifact
// at the target path untouched (temp-file-and-rename contract).
func TestSaveModelFileAtomic(t *testing.T) {
	sys := newTestSystem(t) // no trained model: SaveProposalModel errors
	path := filepath.Join(t.TempDir(), "model.bin")
	sentinel := []byte("previously converged artifact")
	if err := os.WriteFile(path, sentinel, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveModelFile(path); err == nil {
		t.Fatal("save without a model succeeded")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sentinel) {
		t.Fatal("failed save clobbered the existing file")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files in dir after failed save, want 1", len(entries))
	}
}

// TestSaveDOSFileRoundTrip exercises the path-based DOS conveniences.
func TestSaveDOSFileRoundTrip(t *testing.T) {
	sys := newTestSystem(t)
	res, err := sys.SampleDOS(DOSConfig{Windows: 2, Bins: 16, LnFFinal: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dos.bin")
	if err := SaveDOSFile(res.DOS, path); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.DOS.LogG {
		if res.DOS.Visited(i) && d.LogG[i] != res.DOS.LogG[i] {
			t.Fatalf("bin %d: %g vs %g", i, d.LogG[i], res.DOS.LogG[i])
		}
	}
}

// TestWriteFileAtomicErrorCleanup: the writer callback failing must remove
// the temporary file and leave no target.
func TestWriteFileAtomicErrorCleanup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	sentinelErr := fmt.Errorf("mid-write failure")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return sentinelErr
	})
	if !errors.Is(err, sentinelErr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target exists after failed atomic write")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("%d leftover files after failed atomic write", len(entries))
	}
}
