package deepthermo

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestModelFileRoundTrip(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.TrainProposal(&TrainOptions{Epochs: 2, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := sys.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}

	// A fresh system of the same shape loads it and decodes identically.
	sys2, err := NewSystem(SystemConfig{Cells: 2, Seed: 99, Latent: 4, Hidden: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 4)
	a := sys.Model.DecodeProbs(z, 0.5)
	b := sys2.Model.DecodeProbs(z, 0.5)
	for site := range a {
		for k := range a[site] {
			if a[site][k] != b[site][k] {
				t.Fatal("loaded model decodes differently")
			}
		}
	}
}

func TestLoadModelShapeMismatch(t *testing.T) {
	small := newTestSystem(t)
	if err := small.TrainProposal(&TrainOptions{Epochs: 1, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := small.SaveProposalModel(&buf); err != nil {
		t.Fatal(err)
	}
	big, err := NewSystem(SystemConfig{Cells: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.LoadProposalModel(&buf); err == nil {
		t.Fatal("size-mismatched model accepted")
	}
}

func TestSaveModelWithoutTraining(t *testing.T) {
	sys := newTestSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveProposalModel(&buf); err == nil {
		t.Fatal("untrained save accepted")
	}
	if err := sys.SaveModelFile(filepath.Join(t.TempDir(), "m.bin")); err == nil {
		t.Fatal("untrained file save accepted")
	}
}

func TestModelFilePathErrors(t *testing.T) {
	sys := newTestSystem(t)
	if err := sys.LoadModelFile("/nonexistent/path/model.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := sys.TrainProposal(&TrainOptions{Epochs: 1, BatchSize: 32, LR: 1e-3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveModelFile("/nonexistent/dir/model.bin"); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestDOSSaveLoadFacade(t *testing.T) {
	sys := newTestSystem(t)
	res, err := sys.SampleDOS(DOSConfig{Windows: 2, Bins: 16, LnFFinal: 1e-2, NoDL: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDOS(res.DOS, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDOS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bins() != res.DOS.Bins() || loaded.Span() != res.DOS.Span() {
		t.Fatal("DOS round trip changed content")
	}
	// Thermodynamics from the reloaded DOS works.
	if _, err := sys.Thermodynamics(loaded, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDOS(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage DOS accepted")
	}
}
